//! The query IR — the single lowering target of every query surface.
//!
//! [`QueryIr`] is the surface-independent description of one path query:
//! what to match (source/target node constraints, a [`LabelRegex`] edge
//! pattern, an optional `WHERE` condition), under which restrictor, and how
//! to shape the output (a GQL selector or an explicit γ/τ/π slice). The GQL
//! parser ([`crate::parse_query`]), the datalog-ish RPQ surface
//! ([`crate::rpq_surface`]) and raw JSON documents (this module's codec) all
//! produce `QueryIr` values, and [`lower_to_checked_plan`] is the one
//! checked path from any of them to a validated [`PlanExpr`] — so the plan
//! cache key, admission control, in-flight deduplication and every engine
//! strategy apply identically regardless of how the query was written.
//!
//! Two properties make the IR the right cache boundary:
//!
//! * **α-canonical.** Surface variable names (`?x`, `reach(x, y)`) are
//!   dropped at IR construction — the IR stores only positional constraints
//!   — so α-equivalent queries from *any* surface are structurally equal
//!   before a plan is ever built.
//! * **Serializable.** [`QueryIr::to_json_string`] / [`QueryIr::from_json_str`]
//!   give a versioned (`query_ir_v1`) JSON form whose serializer is
//!   canonical: serialize → parse → serialize is byte-identical, which the
//!   golden-file round-trip test pins.

use crate::ast::{NodePattern, OutputSpec, PathQuery};
use crate::json::{parse_json, Json};
use pathalg_core::condition::{Accessor, CompareOp, Condition, Position};
use pathalg_core::error::AlgebraError;
use pathalg_core::expr::PlanExpr;
use pathalg_core::gql::{Restrictor, Selector};
use pathalg_core::ops::group_by::GroupKey;
use pathalg_core::ops::order_by::OrderKey;
use pathalg_core::ops::projection::{ProjectionSpec, Take};
use pathalg_graph::value::Value;
use pathalg_rpq::compile::compile_to_algebra;
use pathalg_rpq::regex::LabelRegex;
use std::fmt;

/// The version tag every serialized IR document carries (and the decoder
/// requires).
pub const QUERY_IR_VERSION: &str = "query_ir_v1";

/// Endpoint constraints of one node pattern, without the surface variable
/// name (the IR is α-canonical; see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IrNode {
    /// Label constraint, if any.
    pub label: Option<String>,
    /// Property constraints (name, required value).
    pub properties: Vec<(String, Value)>,
}

impl IrNode {
    /// A node with no constraints (matches any node).
    pub fn any() -> Self {
        Self::default()
    }

    /// A node constrained to the given label.
    pub fn labeled(label: impl Into<String>) -> Self {
        Self {
            label: Some(label.into()),
            properties: Vec::new(),
        }
    }

    /// Adds a property constraint.
    pub fn with_property(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.properties.push((name.into(), value.into()));
        self
    }

    fn from_pattern(pattern: &NodePattern) -> Self {
        Self {
            label: pattern.label.clone(),
            properties: pattern.properties.clone(),
        }
    }
}

/// How the matched paths are shaped on output: a GQL selector (Table 1) or
/// an explicit projection slice (the paper's extended §7.1 form).
#[derive(Clone, Debug, PartialEq)]
pub enum IrOutput {
    /// A GQL selector, lowered via the Table-7 γ/τ/π templates.
    Selector(Selector),
    /// An explicit `(#P, #G, #A)` slice, combined with the IR's `group_by` /
    /// `order_by` clauses.
    Slice(ProjectionSpec),
}

/// One path query, independent of the surface it was written in. See the
/// module docs for the role this type plays.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryIr {
    /// Output shaping: selector or explicit slice.
    pub output: IrOutput,
    /// The restrictor (path semantics of ϕ).
    pub restrictor: Restrictor,
    /// Source-endpoint constraints.
    pub source: IrNode,
    /// The regular expression over edge labels.
    pub regex: LabelRegex,
    /// Target-endpoint constraints.
    pub target: IrNode,
    /// Optional `WHERE` condition over the whole path.
    pub where_clause: Option<Condition>,
    /// Optional grouping key (only meaningful with [`IrOutput::Slice`]).
    pub group_by: Option<GroupKey>,
    /// Optional ordering key (only meaningful with [`IrOutput::Slice`]).
    pub order_by: Option<OrderKey>,
}

impl PathQuery {
    /// Lowers the parsed GQL query to the surface-independent IR, dropping
    /// the path/node variable names (they never influence the plan).
    pub fn to_ir(&self) -> QueryIr {
        QueryIr {
            output: match &self.output {
                OutputSpec::Selector(s) => IrOutput::Selector(*s),
                OutputSpec::Projection(spec) => IrOutput::Slice(*spec),
            },
            restrictor: self.restrictor,
            source: IrNode::from_pattern(&self.source),
            regex: self.regex.clone(),
            target: IrNode::from_pattern(&self.target),
            where_clause: self.where_clause.clone(),
            group_by: self.group_by,
            order_by: self.order_by,
        }
    }
}

// ---------------------------------------------------------------------------
// Lowering: IR → plan
// ---------------------------------------------------------------------------

impl QueryIr {
    /// Generates the logical plan for this IR (Section 7.2):
    ///
    /// 1. compile the regex under the restrictor's semantics;
    /// 2. fold endpoint constraints, the `WHERE` clause and (where the
    ///    compiled shape requires it) an explicit whole-path restrictor
    ///    predicate into one root selection;
    /// 3. apply the selector's Table-7 pipeline, or the explicit γ/τ/π of a
    ///    slice output.
    pub fn to_plan(&self) -> PlanExpr {
        let compiled = compile_to_algebra(&self.regex, self.restrictor.semantics());
        let filtered = match self.pattern_condition() {
            Some(c) => compiled.select(c),
            None => compiled,
        };
        match &self.output {
            IrOutput::Selector(selector) => filtered.with_selector(*selector),
            IrOutput::Slice(spec) => {
                let grouped = filtered.group_by(self.group_by.unwrap_or(GroupKey::Empty));
                let ordered = match self.order_by {
                    Some(key) => grouped.order_by(key),
                    None => grouped,
                };
                ordered.project(*spec)
            }
        }
    }

    /// Structural validation, before a plan is built: slice counts must be
    /// positive, parameterised selectors need `k ≥ 1`, and a selector output
    /// cannot be combined with explicit `group_by` / `order_by` clauses
    /// (the selector *is* the γ/τ/π pipeline).
    pub fn validate(&self) -> Result<(), AlgebraError> {
        match &self.output {
            IrOutput::Slice(spec) => spec.validate().map_err(|e| AlgebraError::IrValidation {
                field: "output",
                message: e.to_string(),
            })?,
            IrOutput::Selector(selector) => {
                if matches!(
                    selector,
                    Selector::AnyK(0) | Selector::ShortestK(0) | Selector::ShortestKGroup(0)
                ) {
                    return Err(AlgebraError::IrValidation {
                        field: "output",
                        message: format!("selector {selector} requires k >= 1"),
                    });
                }
                if self.group_by.is_some() || self.order_by.is_some() {
                    return Err(AlgebraError::IrValidation {
                        field: "output",
                        message: format!(
                            "selector {selector} already fixes the group/order pipeline; \
                             group_by/order_by are only valid with a slice output"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds the combined endpoint/WHERE/restrictor condition, if any.
    fn pattern_condition(&self) -> Option<Condition> {
        let mut parts: Vec<Condition> = Vec::new();
        parts.extend(node_conditions(&self.source, true));
        parts.extend(node_conditions(&self.target, false));
        if let Some(w) = &self.where_clause {
            parts.push(w.clone());
        }
        // The recursive operator enforces the restrictor on everything it
        // produces, but parts of the pattern that compile without recursion
        // (plain labels, concatenations, bounded repetitions) are built from
        // σ, ⋈ and ∪ only — there the restrictor must be enforced with an
        // explicit whole-path predicate (GQL applies restrictors to the
        // entire matched path, not only to its repeated portions).
        if let Some(predicate) = restrictor_filter(self.restrictor, &self.regex) {
            parts.push(predicate);
        }
        parts.into_iter().reduce(|a, b| a.and(b))
    }
}

/// Validates and lowers an IR to a type-checked plan — **the** single entry
/// point from any query surface to an executable plan. Both failure modes
/// surface as typed [`AlgebraError::IrValidation`] variants.
pub fn lower_to_checked_plan(ir: &QueryIr) -> Result<PlanExpr, AlgebraError> {
    ir.validate()?;
    let plan = ir.to_plan();
    plan.type_check()
        .map_err(|msg| AlgebraError::IrValidation {
            field: "plan",
            message: format!("plan does not type-check: {msg}"),
        })?;
    Ok(plan)
}

/// The whole-path predicate needed to enforce `restrictor` on paths matched
/// by `regex`, or `None` when the compiled plan already enforces it (every
/// way of matching goes through a recursive operator, or the restrictor is
/// trivially satisfied by the shapes the regex can produce).
fn restrictor_filter(restrictor: Restrictor, regex: &LabelRegex) -> Option<Condition> {
    let predicate = match restrictor {
        Restrictor::Walk | Restrictor::Shortest => return None,
        Restrictor::Trail => Condition::IsTrail,
        Restrictor::Acyclic => Condition::IsAcyclic,
        Restrictor::Simple => Condition::IsSimple,
    };
    if fully_guarded(regex, restrictor) {
        None
    } else {
        Some(predicate)
    }
}

/// True if every path matched by `regex` is guaranteed to satisfy the
/// restrictor already — either because it is produced by a recursive
/// operator (which filters), or because its shape cannot violate the
/// restrictor (a single edge is always a trail; the empty path satisfies
/// everything).
fn fully_guarded(regex: &LabelRegex, restrictor: Restrictor) -> bool {
    match regex {
        LabelRegex::Epsilon => true,
        // A single edge always is a trail and is simple (a self loop has
        // first = last); it is *not* necessarily acyclic (self loops).
        LabelRegex::Label(_) | LabelRegex::AnyLabel => {
            matches!(restrictor, Restrictor::Trail | Restrictor::Simple)
        }
        LabelRegex::Alt(a, b) => fully_guarded(a, restrictor) && fully_guarded(b, restrictor),
        LabelRegex::Optional(a) => fully_guarded(a, restrictor),
        // Plus and Star compile to ϕ, which enforces the restrictor on the
        // complete concatenation.
        LabelRegex::Plus(_) | LabelRegex::Star(_) => true,
        // Concatenations and bounded repetitions compile to plain joins.
        LabelRegex::Concat(_, _) | LabelRegex::Repeat { .. } => false,
    }
}

fn node_conditions(node: &IrNode, is_source: bool) -> Vec<Condition> {
    let mut out = Vec::new();
    if let Some(label) = &node.label {
        out.push(if is_source {
            Condition::first_label(label.clone())
        } else {
            Condition::last_label(label.clone())
        });
    }
    for (prop, value) in &node.properties {
        out.push(if is_source {
            Condition::first_property(prop.clone(), value.clone())
        } else {
            Condition::last_property(prop.clone(), value.clone())
        });
    }
    out
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

/// A failure while decoding a JSON document into a [`QueryIr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrError {
    /// Dotted path of the offending field (e.g. `regex.left.op`), or
    /// `"json"` for a syntax error in the document itself.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl IrError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid query IR at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for IrError {}

impl QueryIr {
    /// Encodes the IR as a JSON tree (version tag included).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("version", Json::str(QUERY_IR_VERSION)),
            ("output", encode_output(&self.output)),
            ("restrictor", Json::str(restrictor_name(self.restrictor))),
            ("source", encode_node(&self.source)),
            ("regex", encode_regex(&self.regex)),
            ("target", encode_node(&self.target)),
            (
                "where",
                match &self.where_clause {
                    Some(c) => encode_condition(c),
                    None => Json::Null,
                },
            ),
            ("group_by", encode_group_by(self.group_by)),
            ("order_by", encode_order_by(self.order_by)),
        ])
    }

    /// Compact single-line JSON form.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }

    /// Pretty-printed JSON form (what `repro surfaces` and fixtures show).
    pub fn to_json_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Decodes an IR from a JSON tree, checking the version tag.
    pub fn from_json(json: &Json) -> Result<Self, IrError> {
        let version = require(json, "version")?
            .as_str()
            .ok_or_else(|| IrError::new("version", "expected a string"))?;
        if version != QUERY_IR_VERSION {
            return Err(IrError::new(
                "version",
                format!("unsupported version '{version}' (expected '{QUERY_IR_VERSION}')"),
            ));
        }
        Ok(QueryIr {
            output: decode_output(require(json, "output")?)?,
            restrictor: decode_restrictor(require(json, "restrictor")?)?,
            source: decode_node(require(json, "source")?, "source")?,
            regex: decode_regex(require(json, "regex")?, "regex")?,
            target: decode_node(require(json, "target")?, "target")?,
            where_clause: match optional(json, "where") {
                Some(c) => Some(decode_condition(c, "where")?),
                None => None,
            },
            group_by: decode_group_by(optional(json, "group_by"))?,
            order_by: decode_order_by(optional(json, "order_by"))?,
        })
    }

    /// Parses a JSON document and decodes it.
    pub fn from_json_str(text: &str) -> Result<Self, IrError> {
        let json = parse_json(text).map_err(|e| IrError::new("json", e.to_string()))?;
        Self::from_json(&json)
    }
}

fn require<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, IrError> {
    match obj.get(key) {
        Some(Json::Null) | None => Err(IrError::new(key, "missing required field")),
        Some(value) => Ok(value),
    }
}

fn optional<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj.get(key) {
        Some(Json::Null) | None => None,
        Some(value) => Some(value),
    }
}

fn restrictor_name(r: Restrictor) -> &'static str {
    match r {
        Restrictor::Walk => "walk",
        Restrictor::Trail => "trail",
        Restrictor::Acyclic => "acyclic",
        Restrictor::Simple => "simple",
        Restrictor::Shortest => "shortest",
    }
}

fn decode_restrictor(json: &Json) -> Result<Restrictor, IrError> {
    match json.as_str() {
        Some("walk") => Ok(Restrictor::Walk),
        Some("trail") => Ok(Restrictor::Trail),
        Some("acyclic") => Ok(Restrictor::Acyclic),
        Some("simple") => Ok(Restrictor::Simple),
        Some("shortest") => Ok(Restrictor::Shortest),
        Some(other) => Err(IrError::new(
            "restrictor",
            format!("unknown restrictor '{other}'"),
        )),
        None => Err(IrError::new("restrictor", "expected a string")),
    }
}

fn encode_output(output: &IrOutput) -> Json {
    match output {
        IrOutput::Selector(selector) => {
            let (name, k) = match selector {
                Selector::All => ("all", None),
                Selector::AnyShortest => ("any_shortest", None),
                Selector::AllShortest => ("all_shortest", None),
                Selector::Any => ("any", None),
                Selector::AnyK(k) => ("any_k", Some(*k)),
                Selector::ShortestK(k) => ("shortest_k", Some(*k)),
                Selector::ShortestKGroup(k) => ("shortest_k_group", Some(*k)),
            };
            let mut members = vec![("selector", Json::str(name))];
            if let Some(k) = k {
                members.push(("k", Json::Int(k as i64)));
            }
            Json::object(members)
        }
        IrOutput::Slice(spec) => Json::object([(
            "slice",
            Json::object([
                ("partitions", encode_take(spec.partitions)),
                ("groups", encode_take(spec.groups)),
                ("paths", encode_take(spec.paths)),
            ]),
        )]),
    }
}

fn encode_take(take: Take) -> Json {
    match take {
        Take::All => Json::str("all"),
        Take::Count(k) => Json::Int(k as i64),
    }
}

fn decode_take(json: &Json, path: &str) -> Result<Take, IrError> {
    match json {
        Json::Str(s) if s == "all" => Ok(Take::All),
        Json::Int(k) if *k >= 1 => Ok(Take::Count(*k as usize)),
        _ => Err(IrError::new(path, "expected \"all\" or a positive integer")),
    }
}

fn decode_output(json: &Json) -> Result<IrOutput, IrError> {
    if let Some(slice) = optional(json, "slice") {
        let spec = ProjectionSpec::new(
            decode_take(require(slice, "partitions")?, "output.slice.partitions")?,
            decode_take(require(slice, "groups")?, "output.slice.groups")?,
            decode_take(require(slice, "paths")?, "output.slice.paths")?,
        );
        return Ok(IrOutput::Slice(spec));
    }
    let name = optional(json, "selector")
        .and_then(Json::as_str)
        .ok_or_else(|| IrError::new("output", "expected a \"selector\" or \"slice\" member"))?;
    let k = || -> Result<usize, IrError> {
        optional(json, "k")
            .and_then(Json::as_int)
            .filter(|k| *k >= 1)
            .map(|k| k as usize)
            .ok_or_else(|| {
                IrError::new("output.k", format!("selector '{name}' needs a positive k"))
            })
    };
    let selector = match name {
        "all" => Selector::All,
        "any_shortest" => Selector::AnyShortest,
        "all_shortest" => Selector::AllShortest,
        "any" => Selector::Any,
        "any_k" => Selector::AnyK(k()?),
        "shortest_k" => Selector::ShortestK(k()?),
        "shortest_k_group" => Selector::ShortestKGroup(k()?),
        other => {
            return Err(IrError::new(
                "output.selector",
                format!("unknown selector '{other}'"),
            ))
        }
    };
    Ok(IrOutput::Selector(selector))
}

fn encode_node(node: &IrNode) -> Json {
    Json::object([
        (
            "label",
            match &node.label {
                Some(l) => Json::str(l.clone()),
                None => Json::Null,
            },
        ),
        (
            "properties",
            Json::Object(
                node.properties
                    .iter()
                    .map(|(k, v)| (k.clone(), encode_value(v)))
                    .collect(),
            ),
        ),
    ])
}

fn decode_node(json: &Json, path: &str) -> Result<IrNode, IrError> {
    if !matches!(json, Json::Object(_)) {
        return Err(IrError::new(path, "expected an object"));
    }
    let label = match optional(json, "label") {
        Some(l) => Some(
            l.as_str()
                .ok_or_else(|| IrError::new(format!("{path}.label"), "expected a string"))?
                .to_string(),
        ),
        None => None,
    };
    let mut properties = Vec::new();
    if let Some(props) = optional(json, "properties") {
        let Json::Object(members) = props else {
            return Err(IrError::new(
                format!("{path}.properties"),
                "expected an object",
            ));
        };
        for (name, value) in members {
            properties.push((
                name.clone(),
                decode_value(value, &format!("{path}.properties.{name}"))?,
            ));
        }
    }
    Ok(IrNode { label, properties })
}

fn encode_value(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::str(s.clone()),
    }
}

fn decode_value(json: &Json, path: &str) -> Result<Value, IrError> {
    match json {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        other => Err(IrError::new(
            path,
            format!("expected a literal value, found {}", other.type_name()),
        )),
    }
}

fn encode_regex(regex: &LabelRegex) -> Json {
    match regex {
        LabelRegex::Epsilon => Json::object([("op", Json::str("epsilon"))]),
        LabelRegex::Label(l) => {
            Json::object([("op", Json::str("label")), ("label", Json::str(l.clone()))])
        }
        LabelRegex::AnyLabel => Json::object([("op", Json::str("any_label"))]),
        LabelRegex::Concat(a, b) => Json::object([
            ("op", Json::str("concat")),
            ("left", encode_regex(a)),
            ("right", encode_regex(b)),
        ]),
        LabelRegex::Alt(a, b) => Json::object([
            ("op", Json::str("alt")),
            ("left", encode_regex(a)),
            ("right", encode_regex(b)),
        ]),
        LabelRegex::Star(a) => {
            Json::object([("op", Json::str("star")), ("inner", encode_regex(a))])
        }
        LabelRegex::Plus(a) => {
            Json::object([("op", Json::str("plus")), ("inner", encode_regex(a))])
        }
        LabelRegex::Optional(a) => {
            Json::object([("op", Json::str("optional")), ("inner", encode_regex(a))])
        }
        LabelRegex::Repeat { inner, min, max } => Json::object([
            ("op", Json::str("repeat")),
            ("inner", encode_regex(inner)),
            ("min", Json::Int(*min as i64)),
            (
                "max",
                match max {
                    Some(m) => Json::Int(*m as i64),
                    None => Json::Null,
                },
            ),
        ]),
    }
}

fn decode_regex(json: &Json, path: &str) -> Result<LabelRegex, IrError> {
    let op = require_at(json, "op", path)?
        .as_str()
        .ok_or_else(|| IrError::new(format!("{path}.op"), "expected a string"))?;
    let child = |key: &str| -> Result<LabelRegex, IrError> {
        decode_regex(require_at(json, key, path)?, &format!("{path}.{key}"))
    };
    match op {
        "epsilon" => Ok(LabelRegex::Epsilon),
        "any_label" => Ok(LabelRegex::AnyLabel),
        "label" => Ok(LabelRegex::Label(
            require_at(json, "label", path)?
                .as_str()
                .ok_or_else(|| IrError::new(format!("{path}.label"), "expected a string"))?
                .to_string(),
        )),
        "concat" => Ok(child("left")?.then(child("right")?)),
        "alt" => Ok(child("left")?.or(child("right")?)),
        "star" => Ok(child("inner")?.star()),
        "plus" => Ok(child("inner")?.plus()),
        "optional" => Ok(child("inner")?.optional()),
        "repeat" => {
            let min = require_at(json, "min", path)?
                .as_int()
                .filter(|m| *m >= 0)
                .ok_or_else(|| {
                    IrError::new(format!("{path}.min"), "expected a non-negative integer")
                })? as usize;
            let max = match optional(json, "max") {
                None => None,
                Some(m) => Some(m.as_int().filter(|m| *m >= 0).ok_or_else(|| {
                    IrError::new(format!("{path}.max"), "expected a non-negative integer")
                })? as usize),
            };
            Ok(child("inner")?.repeat(min, max))
        }
        other => Err(IrError::new(
            format!("{path}.op"),
            format!("unknown regex operator '{other}'"),
        )),
    }
}

fn require_at<'a>(obj: &'a Json, key: &str, path: &str) -> Result<&'a Json, IrError> {
    match obj.get(key) {
        Some(Json::Null) | None => Err(IrError::new(
            format!("{path}.{key}"),
            "missing required field",
        )),
        Some(value) => Ok(value),
    }
}

fn encode_position(pos: Position) -> Json {
    match pos {
        Position::First => Json::str("first"),
        Position::Last => Json::str("last"),
        Position::Index(i) => Json::Int(i as i64),
    }
}

fn decode_position(json: &Json, path: &str) -> Result<Position, IrError> {
    match json {
        Json::Str(s) if s == "first" => Ok(Position::First),
        Json::Str(s) if s == "last" => Ok(Position::Last),
        Json::Int(i) if *i >= 1 => Ok(Position::Index(*i as usize)),
        _ => Err(IrError::new(
            path,
            "expected \"first\", \"last\" or a 1-based index",
        )),
    }
}

fn encode_accessor(accessor: &Accessor) -> Json {
    match accessor {
        Accessor::NodeLabel(pos) => Json::object([
            ("kind", Json::str("node_label")),
            ("at", encode_position(*pos)),
        ]),
        Accessor::EdgeLabel(pos) => Json::object([
            ("kind", Json::str("edge_label")),
            ("at", encode_position(*pos)),
        ]),
        Accessor::NodeProperty(pos, prop) => Json::object([
            ("kind", Json::str("node_property")),
            ("at", encode_position(*pos)),
            ("property", Json::str(prop.clone())),
        ]),
        Accessor::EdgeProperty(pos, prop) => Json::object([
            ("kind", Json::str("edge_property")),
            ("at", encode_position(*pos)),
            ("property", Json::str(prop.clone())),
        ]),
        Accessor::Len => Json::object([("kind", Json::str("len"))]),
    }
}

fn decode_accessor(json: &Json, path: &str) -> Result<Accessor, IrError> {
    let kind = require_at(json, "kind", path)?
        .as_str()
        .ok_or_else(|| IrError::new(format!("{path}.kind"), "expected a string"))?;
    if kind == "len" {
        return Ok(Accessor::Len);
    }
    let at = decode_position(require_at(json, "at", path)?, &format!("{path}.at"))?;
    let property = || -> Result<String, IrError> {
        Ok(require_at(json, "property", path)?
            .as_str()
            .ok_or_else(|| IrError::new(format!("{path}.property"), "expected a string"))?
            .to_string())
    };
    match kind {
        "node_label" => Ok(Accessor::NodeLabel(at)),
        "edge_label" => Ok(Accessor::EdgeLabel(at)),
        "node_property" => Ok(Accessor::NodeProperty(at, property()?)),
        "edge_property" => Ok(Accessor::EdgeProperty(at, property()?)),
        other => Err(IrError::new(
            format!("{path}.kind"),
            format!("unknown accessor kind '{other}'"),
        )),
    }
}

fn compare_op_name(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "eq",
        CompareOp::Ne => "ne",
        CompareOp::Lt => "lt",
        CompareOp::Le => "le",
        CompareOp::Gt => "gt",
        CompareOp::Ge => "ge",
    }
}

fn decode_compare_op(json: &Json, path: &str) -> Result<CompareOp, IrError> {
    match json.as_str() {
        Some("eq") => Ok(CompareOp::Eq),
        Some("ne") => Ok(CompareOp::Ne),
        Some("lt") => Ok(CompareOp::Lt),
        Some("le") => Ok(CompareOp::Le),
        Some("gt") => Ok(CompareOp::Gt),
        Some("ge") => Ok(CompareOp::Ge),
        _ => Err(IrError::new(path, "expected one of eq, ne, lt, le, gt, ge")),
    }
}

fn encode_condition(condition: &Condition) -> Json {
    match condition {
        Condition::Compare {
            accessor,
            op,
            value,
        } => Json::object([
            ("op", Json::str("compare")),
            ("accessor", encode_accessor(accessor)),
            ("cmp", Json::str(compare_op_name(*op))),
            ("value", encode_value(value)),
        ]),
        Condition::Bound(accessor) => Json::object([
            ("op", Json::str("bound")),
            ("accessor", encode_accessor(accessor)),
        ]),
        Condition::Substr(accessor, needle) => Json::object([
            ("op", Json::str("substr")),
            ("accessor", encode_accessor(accessor)),
            ("needle", Json::str(needle.clone())),
        ]),
        Condition::IsTrail => Json::object([("op", Json::str("is_trail"))]),
        Condition::IsAcyclic => Json::object([("op", Json::str("is_acyclic"))]),
        Condition::IsSimple => Json::object([("op", Json::str("is_simple"))]),
        Condition::And(a, b) => Json::object([
            ("op", Json::str("and")),
            ("left", encode_condition(a)),
            ("right", encode_condition(b)),
        ]),
        Condition::Or(a, b) => Json::object([
            ("op", Json::str("or")),
            ("left", encode_condition(a)),
            ("right", encode_condition(b)),
        ]),
        Condition::Not(c) => {
            Json::object([("op", Json::str("not")), ("inner", encode_condition(c))])
        }
        Condition::True => Json::object([("op", Json::str("true"))]),
    }
}

fn decode_condition(json: &Json, path: &str) -> Result<Condition, IrError> {
    let op = require_at(json, "op", path)?
        .as_str()
        .ok_or_else(|| IrError::new(format!("{path}.op"), "expected a string"))?;
    let child = |key: &str| -> Result<Condition, IrError> {
        decode_condition(require_at(json, key, path)?, &format!("{path}.{key}"))
    };
    let accessor = || -> Result<Accessor, IrError> {
        decode_accessor(
            require_at(json, "accessor", path)?,
            &format!("{path}.accessor"),
        )
    };
    match op {
        "compare" => Ok(Condition::Compare {
            accessor: accessor()?,
            op: decode_compare_op(require_at(json, "cmp", path)?, &format!("{path}.cmp"))?,
            value: decode_value(require_at(json, "value", path)?, &format!("{path}.value"))?,
        }),
        "bound" => Ok(Condition::Bound(accessor()?)),
        "substr" => Ok(Condition::Substr(
            accessor()?,
            require_at(json, "needle", path)?
                .as_str()
                .ok_or_else(|| IrError::new(format!("{path}.needle"), "expected a string"))?
                .to_string(),
        )),
        "is_trail" => Ok(Condition::IsTrail),
        "is_acyclic" => Ok(Condition::IsAcyclic),
        "is_simple" => Ok(Condition::IsSimple),
        "and" => Ok(child("left")?.and(child("right")?)),
        "or" => Ok(child("left")?.or(child("right")?)),
        "not" => Ok(child("inner")?.not()),
        "true" => Ok(Condition::True),
        other => Err(IrError::new(
            format!("{path}.op"),
            format!("unknown condition operator '{other}'"),
        )),
    }
}

fn encode_group_by(key: Option<GroupKey>) -> Json {
    let Some(key) = key else { return Json::Null };
    let (s, t, l) = match key {
        GroupKey::Empty => (false, false, false),
        GroupKey::Source => (true, false, false),
        GroupKey::Target => (false, true, false),
        GroupKey::Length => (false, false, true),
        GroupKey::SourceTarget => (true, true, false),
        GroupKey::SourceLength => (true, false, true),
        GroupKey::TargetLength => (false, true, true),
        GroupKey::SourceTargetLength => (true, true, true),
    };
    let mut parts = Vec::new();
    if s {
        parts.push(Json::str("source"));
    }
    if t {
        parts.push(Json::str("target"));
    }
    if l {
        parts.push(Json::str("length"));
    }
    Json::Array(parts)
}

fn decode_group_by(json: Option<&Json>) -> Result<Option<GroupKey>, IrError> {
    let Some(json) = json else { return Ok(None) };
    let items = json
        .as_array()
        .ok_or_else(|| IrError::new("group_by", "expected an array of keys"))?;
    let (mut s, mut t, mut l) = (false, false, false);
    for item in items {
        match item.as_str() {
            Some("source") => s = true,
            Some("target") => t = true,
            Some("length") => l = true,
            _ => {
                return Err(IrError::new(
                    "group_by",
                    "expected \"source\", \"target\" or \"length\"",
                ))
            }
        }
    }
    Ok(Some(match (s, t, l) {
        (false, false, false) => GroupKey::Empty,
        (true, false, false) => GroupKey::Source,
        (false, true, false) => GroupKey::Target,
        (false, false, true) => GroupKey::Length,
        (true, true, false) => GroupKey::SourceTarget,
        (true, false, true) => GroupKey::SourceLength,
        (false, true, true) => GroupKey::TargetLength,
        (true, true, true) => GroupKey::SourceTargetLength,
    }))
}

fn encode_order_by(key: Option<OrderKey>) -> Json {
    let Some(key) = key else { return Json::Null };
    let (p, g, a) = match key {
        OrderKey::Partition => (true, false, false),
        OrderKey::Group => (false, true, false),
        OrderKey::Path => (false, false, true),
        OrderKey::PartitionGroup => (true, true, false),
        OrderKey::PartitionPath => (true, false, true),
        OrderKey::GroupPath => (false, true, true),
        OrderKey::PartitionGroupPath => (true, true, true),
    };
    let mut parts = Vec::new();
    if p {
        parts.push(Json::str("partition"));
    }
    if g {
        parts.push(Json::str("group"));
    }
    if a {
        parts.push(Json::str("path"));
    }
    Json::Array(parts)
}

fn decode_order_by(json: Option<&Json>) -> Result<Option<OrderKey>, IrError> {
    let Some(json) = json else { return Ok(None) };
    let items = json
        .as_array()
        .ok_or_else(|| IrError::new("order_by", "expected an array of keys"))?;
    let (mut p, mut g, mut a) = (false, false, false);
    for item in items {
        match item.as_str() {
            Some("partition") => p = true,
            Some("group") => g = true,
            Some("path") => a = true,
            _ => {
                return Err(IrError::new(
                    "order_by",
                    "expected \"partition\", \"group\" or \"path\"",
                ))
            }
        }
    }
    Ok(Some(match (p, g, a) {
        (false, false, false) => {
            return Err(IrError::new("order_by", "needs at least one key"));
        }
        (true, false, false) => OrderKey::Partition,
        (false, true, false) => OrderKey::Group,
        (false, false, true) => OrderKey::Path,
        (true, true, false) => OrderKey::PartitionGroup,
        (true, false, true) => OrderKey::PartitionPath,
        (false, true, true) => OrderKey::GroupPath,
        (true, true, true) => OrderKey::PartitionGroupPath,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn moe_ir() -> QueryIr {
        QueryIr {
            output: IrOutput::Selector(Selector::AnyShortest),
            restrictor: Restrictor::Trail,
            source: IrNode::any().with_property("name", Value::str("Moe")),
            regex: LabelRegex::label("Likes")
                .then(LabelRegex::label("Has_creator"))
                .plus(),
            target: IrNode::any(),
            where_clause: None,
            group_by: None,
            order_by: None,
        }
    }

    #[test]
    fn gql_lowers_through_the_ir_unchanged() {
        // PathQuery::to_ir().to_plan() ≡ the plan the generator always built.
        for text in [
            "MATCH ANY SHORTEST TRAIL p = (?x {name:\"Moe\"})-[(:Likes/:Has_creator)+]->(?y)",
            "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) \
             GROUP BY TARGET ORDER BY PATH",
            "MATCH ALL ACYCLIC p = (?x)-[:Likes/:Has_creator]->(?y)",
            "MATCH SHORTEST 2 GROUP SIMPLE p = (?x:Person)-[:Knows+]->(?y) WHERE len() <= 4",
        ] {
            let q = parse_query(text).unwrap();
            assert_eq!(q.to_ir().to_plan(), q.to_plan(), "{text}");
        }
    }

    #[test]
    fn ir_is_alpha_canonical() {
        let a = parse_query("MATCH ANY SHORTEST TRAIL p = (?x)-[(:Knows)+]->(?y)").unwrap();
        let b = parse_query("MATCH ANY SHORTEST TRAIL route = (?from)-[(:Knows)+]->(?to)").unwrap();
        assert_ne!(a, b, "surface ASTs differ (variable names)");
        assert_eq!(a.to_ir(), b.to_ir(), "IRs are structurally equal");
    }

    #[test]
    fn json_round_trip_preserves_the_ir() {
        let ir = moe_ir();
        let text = ir.to_json_string();
        let back = QueryIr::from_json_str(&text).unwrap();
        assert_eq!(back, ir);
        // Serialize → parse → serialize is byte-identical (canonical form).
        assert_eq!(back.to_json_string(), text);
        // Pretty form decodes to the same IR too.
        assert_eq!(QueryIr::from_json_str(&ir.to_json_pretty()).unwrap(), ir);
    }

    #[test]
    fn json_round_trip_covers_every_construct() {
        let ir = QueryIr {
            output: IrOutput::Slice(ProjectionSpec::new(
                Take::Count(2),
                Take::All,
                Take::Count(1),
            )),
            restrictor: Restrictor::Simple,
            source: IrNode::labeled("Person")
                .with_property("name", Value::str("Moe"))
                .with_property("age", Value::Int(39))
                .with_property("score", Value::Float(1.5))
                .with_property("active", Value::Bool(true))
                .with_property("nick", Value::Null),
            regex: LabelRegex::label("Knows")
                .or(LabelRegex::label("Likes").then(LabelRegex::AnyLabel))
                .star()
                .then(LabelRegex::label("Has_creator").optional())
                .then(LabelRegex::label("Knows").repeat(1, Some(3)))
                .then(LabelRegex::Epsilon)
                .then(LabelRegex::label("Knows").repeat(2, None)),
            target: IrNode::labeled("Message"),
            where_clause: Some(
                Condition::edge_label(1, "Knows")
                    .and(Condition::Bound(Accessor::EdgeProperty(
                        Position::Index(2),
                        "since".into(),
                    )))
                    .and(Condition::Substr(
                        Accessor::NodeProperty(Position::First, "name".into()),
                        "o".into(),
                    ))
                    .or(Condition::IsTrail
                        .and(Condition::IsAcyclic)
                        .and(Condition::IsSimple)
                        .and(Condition::True)
                        .not())
                    .and(Condition::len_cmp(CompareOp::Le, 5))
                    .and(Condition::Compare {
                        accessor: Accessor::NodeLabel(Position::Last),
                        op: CompareOp::Ne,
                        value: Value::str("Forum"),
                    }),
            ),
            group_by: Some(GroupKey::SourceTargetLength),
            order_by: Some(OrderKey::PartitionGroupPath),
        };
        let text = ir.to_json_string();
        let back = QueryIr::from_json_str(&text).unwrap();
        assert_eq!(back, ir);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn every_group_and_order_key_round_trips() {
        for key in [
            GroupKey::Empty,
            GroupKey::Source,
            GroupKey::Target,
            GroupKey::Length,
            GroupKey::SourceTarget,
            GroupKey::SourceLength,
            GroupKey::TargetLength,
            GroupKey::SourceTargetLength,
        ] {
            let mut ir = moe_ir();
            ir.output = IrOutput::Slice(ProjectionSpec::all());
            ir.group_by = Some(key);
            let back = QueryIr::from_json_str(&ir.to_json_string()).unwrap();
            assert_eq!(back.group_by, Some(key));
        }
        for key in [
            OrderKey::Partition,
            OrderKey::Group,
            OrderKey::Path,
            OrderKey::PartitionGroup,
            OrderKey::PartitionPath,
            OrderKey::GroupPath,
            OrderKey::PartitionGroupPath,
        ] {
            let mut ir = moe_ir();
            ir.output = IrOutput::Slice(ProjectionSpec::all());
            ir.order_by = Some(key);
            let back = QueryIr::from_json_str(&ir.to_json_string()).unwrap();
            assert_eq!(back.order_by, Some(key));
        }
    }

    #[test]
    fn decode_errors_carry_field_paths() {
        let cases = [
            (r#"{}"#, "version"),
            (r#"{"version":"query_ir_v99"}"#, "unsupported version"),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"bogus"},"restrictor":"trail",
                   "source":{},"regex":{"op":"epsilon"},"target":{}}"#,
                "unknown selector",
            ),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"any_k"},"restrictor":"trail",
                   "source":{},"regex":{"op":"epsilon"},"target":{}}"#,
                "positive k",
            ),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"all"},"restrictor":"hop",
                   "source":{},"regex":{"op":"epsilon"},"target":{}}"#,
                "unknown restrictor",
            ),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"all"},"restrictor":"trail",
                   "source":{},"regex":{"op":"concat","left":{"op":"label","label":"a"}},
                   "target":{}}"#,
                "regex.right",
            ),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"all"},"restrictor":"trail",
                   "source":{},"regex":{"op":"epsilon"},"target":{},
                   "where":{"op":"compare","accessor":{"kind":"len"},"cmp":"weird","value":1}}"#,
                "where.cmp",
            ),
            (
                r#"{"version":"query_ir_v1","output":{"selector":"all"},"restrictor":"trail",
                   "source":{},"regex":{"op":"epsilon"},"target":{},"group_by":["diagonal"]}"#,
                "group_by",
            ),
            ("{not json", "JSON syntax error"),
        ];
        for (text, needle) in cases {
            let err = QueryIr::from_json_str(text).unwrap_err();
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{text}: got {rendered}");
        }
    }

    #[test]
    fn lower_to_checked_plan_validates_and_type_checks() {
        let plan = lower_to_checked_plan(&moe_ir()).unwrap();
        let text = plan.to_string();
        assert!(text.starts_with("π(*,*,1)(τA(γST(σ["), "got {text}");
        assert!(text.contains("ϕTRAIL("), "got {text}");

        // Zero slice counts are a typed IR validation error.
        let mut bad = moe_ir();
        bad.output = IrOutput::Slice(ProjectionSpec::new(Take::Count(0), Take::All, Take::All));
        let err = lower_to_checked_plan(&bad).unwrap_err();
        assert!(matches!(
            err,
            AlgebraError::IrValidation {
                field: "output",
                ..
            }
        ));

        // k = 0 selectors are rejected before plan generation.
        let mut bad = moe_ir();
        bad.output = IrOutput::Selector(Selector::AnyK(0));
        assert!(lower_to_checked_plan(&bad).is_err());

        // A selector output cannot carry explicit group_by/order_by.
        let mut bad = moe_ir();
        bad.group_by = Some(GroupKey::Target);
        let err = lower_to_checked_plan(&bad).unwrap_err();
        assert!(err.to_string().contains("slice output"), "{err}");
    }

    #[test]
    fn selector_ks_survive_the_codec() {
        for selector in [
            Selector::AnyK(3),
            Selector::ShortestK(2),
            Selector::ShortestKGroup(4),
        ] {
            let mut ir = moe_ir();
            ir.output = IrOutput::Selector(selector);
            let back = QueryIr::from_json_str(&ir.to_json_string()).unwrap();
            assert_eq!(back.output, IrOutput::Selector(selector));
        }
    }
}
