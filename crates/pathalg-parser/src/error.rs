//! Parse errors with source positions.

use std::fmt;

/// An error produced while lexing or parsing a path query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the query text where the error was detected.
    pub position: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error.
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        Self {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_includes_position_and_message() {
        let e = ParseError::new(17, "expected MATCH");
        assert_eq!(e.to_string(), "parse error at offset 17: expected MATCH");
        assert_eq!(e.position, 17);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ParseError::new(0, "x"));
    }
}
