//! # pathalg-parser — the extended-GQL surface syntax
//!
//! Section 7.1 of the paper extends the GQL path-query grammar so that every
//! operator of the path algebra can be written in a declarative query, and
//! Section 7.2 describes a parser that turns such queries into logical plans.
//! The paper's reference parser is a Java/ANTLR application; this crate is the
//! equivalent component in Rust: a hand-written lexer and recursive-descent
//! parser, an AST, and a plan generator producing
//! [`pathalg_core::expr::PlanExpr`] trees.
//!
//! Two query forms are accepted:
//!
//! * **Extended form** (the paper's §7.1 grammar):
//!   `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y)
//!    GROUP BY TARGET ORDER BY PATH`
//! * **Standard GQL form** (selector + restrictor, §2.3):
//!   `MATCH ANY SHORTEST TRAIL p = (?x)-[(:Knows)+]->(?y)`
//!
//! Both compile to the same algebra. Node patterns may carry label and
//! property constraints (`(?x:Person {name:"Moe"})`), and an optional `WHERE`
//! clause accepts the full selection-condition language of §3.1.
//!
//! ```
//! use pathalg_parser::parse_query;
//!
//! let q = parse_query(
//!     "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) \
//!      GROUP BY TARGET ORDER BY PATH",
//! ).unwrap();
//! let plan = q.to_plan();
//! assert!(plan.to_string().starts_with("π(*,*,1)(τA(γT("));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod plan_gen;

pub use ast::PathQuery;
pub use error::ParseError;
pub use normalize::{normalize_plan, plan_cache_key, PlanKey};
pub use parser::parse_query;
