//! # pathalg-parser — the multi-surface query front-end
//!
//! Section 7.1 of the paper extends the GQL path-query grammar so that every
//! operator of the path algebra can be written in a declarative query, and
//! Section 7.2 describes a parser that turns such queries into logical plans.
//! This crate is that component in Rust — and since the front-end redesign it
//! accepts **three** surfaces, all funnelled through one serializable,
//! α-canonical intermediate representation ([`QueryIr`], version
//! `query_ir_v1`) and one checked lowering ([`lower_to_checked_plan`]):
//!
//! * **Extended GQL** ([`parse_query`], §7.1 grammar):
//!   `MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y)
//!    GROUP BY TARGET ORDER BY PATH`
//!   — with the standard selector form (`MATCH ANY SHORTEST TRAIL …`, §2.3)
//!   accepted alongside.
//! * **Datalog-ish RPQ rules** ([`parse_rpq`]):
//!   `reach(x, y) :- (:Knows)+, trail, any_shortest.`
//! * **Raw JSON IR** ([`QueryIr::from_json_str`]): versioned `query_ir_v1`
//!   documents, round-trippable byte-for-byte via [`QueryIr::to_json_string`].
//!
//! [`parse_surface`] dispatches on a [`QuerySurface`] tag. Because every
//! surface lowers through the same IR and the same plan generator, the same
//! logical query — however it is written — produces structurally equal plans
//! and therefore the same plan-cache key ([`plan_cache_key`]), the same
//! admission decision, and one deduplicated in-flight evaluation.
//!
//! ```
//! use pathalg_parser::{parse_surface, parse_query, QuerySurface};
//!
//! let gql = parse_query(
//!     "MATCH ANY SHORTEST TRAIL p = (?x)-[(:Knows)+]->(?y)",
//! ).unwrap().to_ir();
//! let rule = parse_surface(
//!     QuerySurface::Rpq,
//!     "reach(x, y) :- (:Knows)+, trail, any_shortest.",
//! ).unwrap();
//! assert_eq!(gql, rule);
//! assert!(gql.to_plan().to_string().starts_with("π(*,*,1)(τA(γST("));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod ir;
pub mod json;
pub(crate) mod lexer;
pub mod normalize;
pub mod parser;
pub mod plan_gen;
pub mod rpq_surface;
pub mod surface;

pub use ast::PathQuery;
pub use error::ParseError;
pub use ir::{lower_to_checked_plan, IrError, IrNode, IrOutput, QueryIr, QUERY_IR_VERSION};
pub use json::{parse_json, Json, JsonError};
pub use normalize::{normalize_plan, plan_cache_key, PlanKey};
pub use parser::parse_query;
pub use rpq_surface::parse_rpq;
pub use surface::{
    parse_surface, parse_to_checked_plan, QuerySurface, SurfaceError, SurfaceParseOrLowerError,
};
