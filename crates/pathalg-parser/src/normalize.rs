//! Plan normalisation and cache-key fingerprinting for the query service.
//!
//! A long-lived service (`pathalg-server`'s `QueryService`) caches planning
//! work keyed by the *logical plan*, so two queries that compile to
//! semantically identical plans must map to the same cache key even when
//! their plan trees differ syntactically. Two sources of benign syntactic
//! divergence exist in this algebra:
//!
//! * **α-equivalence.** Variable names (`?x`, `?friend`) never survive plan
//!   generation — [`PathQuery::to_plan`](crate::ast::PathQuery) emits
//!   positional accessors only — so α-equivalent queries already produce
//!   structurally identical [`PlanExpr`] trees and need no extra handling.
//! * **Join association.** ⋈ is associative (path concatenation), and the
//!   enumeration order of a join's output is association-independent (see
//!   [`PlanExpr::label_scan_chain`]), so `(a ⋈ b) ⋈ c` and `a ⋈ (b ⋈ c)`
//!   are the same plan. [`normalize_plan`] rewrites every join tree into
//!   its canonical **left-deep** association, preserving operand order
//!   (⋈ is *not* commutative).
//!
//! [`plan_cache_key`] then fingerprints the normalised tree together with
//! the recursion bounds the plan would run under — bounds change both
//! results (`max_paths`) and strategy decisions, so they are part of the
//! key, not of the cached value. The key carries the full canonical form
//! alongside the 64-bit hash: lookups compare both, so a fingerprint
//! collision can never alias two distinct plans to one cache entry.

use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::recursive::RecursionConfig;

/// A collision-proof plan-cache key: a 64-bit FNV-1a fingerprint for cheap
/// bucketing plus the canonical rendering it was computed from. Equality
/// compares both, so plans whose fingerprints collide still occupy distinct
/// cache entries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// FNV-1a fingerprint of [`PlanKey::canonical`].
    pub hash: u64,
    /// The canonical form: the normalised plan (debug rendering, which is
    /// injective over plan trees) plus the recursion bounds.
    pub canonical: String,
}

impl std::fmt::Display for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// Rewrites a plan into its canonical form: every join tree is re-associated
/// left-deep (operand order preserved — ⋈ concatenates, so it is associative
/// but not commutative); all other operators are normalised recursively and
/// left intact. The normalised plan is semantically identical to the input —
/// same result paths, same enumeration order — and every association of the
/// same join sequence normalises to the same tree.
pub fn normalize_plan(plan: &PlanExpr) -> PlanExpr {
    match plan {
        PlanExpr::Nodes => PlanExpr::Nodes,
        PlanExpr::Edges => PlanExpr::Edges,
        PlanExpr::Selection { condition, input } => PlanExpr::Selection {
            condition: condition.clone(),
            input: Box::new(normalize_plan(input)),
        },
        PlanExpr::Join { .. } => {
            let mut operands = Vec::new();
            flatten_joins(plan, &mut operands);
            let mut iter = operands.into_iter();
            let first = iter.next().expect("a join has at least two operands");
            iter.fold(first, |acc, rhs| acc.join(rhs))
        }
        PlanExpr::Union { left, right } => PlanExpr::Union {
            left: Box::new(normalize_plan(left)),
            right: Box::new(normalize_plan(right)),
        },
        PlanExpr::Recursive { semantics, input } => PlanExpr::Recursive {
            semantics: *semantics,
            input: Box::new(normalize_plan(input)),
        },
        PlanExpr::GroupBy { key, input } => PlanExpr::GroupBy {
            key: *key,
            input: Box::new(normalize_plan(input)),
        },
        PlanExpr::OrderBy { key, input } => PlanExpr::OrderBy {
            key: *key,
            input: Box::new(normalize_plan(input)),
        },
        PlanExpr::Projection { spec, input } => PlanExpr::Projection {
            spec: *spec,
            input: Box::new(normalize_plan(input)),
        },
    }
}

/// Collects the non-join operands of a join tree in concatenation order,
/// normalising each.
fn flatten_joins(plan: &PlanExpr, out: &mut Vec<PlanExpr>) {
    match plan {
        PlanExpr::Join { left, right } => {
            flatten_joins(left, out);
            flatten_joins(right, out);
        }
        other => out.push(normalize_plan(other)),
    }
}

/// Computes the service-level cache key of a plan under the given recursion
/// bounds: normalise, render canonically, fingerprint. See the module docs
/// for what the key does and does not identify.
pub fn plan_cache_key(plan: &PlanExpr, recursion: &RecursionConfig) -> PlanKey {
    let canonical = format!(
        "{:?} [max_length={:?} max_paths={:?}]",
        normalize_plan(plan),
        recursion.max_length,
        recursion.max_paths
    );
    PlanKey {
        hash: fnv1a(canonical.as_bytes()),
        canonical,
    }
}

/// 64-bit FNV-1a over a byte string — small, dependency-free, and stable
/// across runs and platforms (unlike `DefaultHasher`, whose seeds vary).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::recursive::PathSemantics;

    fn scan(label: &str) -> PlanExpr {
        PlanExpr::edges().select(Condition::edge_label(1, label))
    }

    #[test]
    fn join_association_normalises_to_one_tree() {
        let a = || scan("Likes");
        let b = || scan("Has_creator");
        let c = || scan("Knows");
        let left_deep = a().join(b()).join(c());
        let right_deep = a().join(b().join(c()));
        let mixed = a().join(b()).join(c());
        let norm = normalize_plan(&left_deep);
        assert_eq!(norm, normalize_plan(&right_deep));
        assert_eq!(norm, normalize_plan(&mixed));
        // The canonical association is left-deep.
        assert_eq!(norm, left_deep);
        // Operand order is preserved: ⋈ is not commutative.
        assert_ne!(
            normalize_plan(&a().join(b())),
            normalize_plan(&b().join(a()))
        );
    }

    #[test]
    fn normalisation_recurses_through_every_operator() {
        let deep = a_pipeline(scan("Likes").join(scan("Has_creator").join(scan("Knows"))));
        let flat = a_pipeline(scan("Likes").join(scan("Has_creator")).join(scan("Knows")));
        assert_eq!(normalize_plan(&deep), normalize_plan(&flat));
    }

    fn a_pipeline(base: PlanExpr) -> PlanExpr {
        use pathalg_core::ops::group_by::GroupKey;
        use pathalg_core::ops::projection::{ProjectionSpec, Take};
        base.recursive(PathSemantics::Simple)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)))
    }

    #[test]
    fn cache_keys_separate_semantics_bounds_and_shapes() {
        let cfg = RecursionConfig::default();
        let trail = scan("Knows").recursive(PathSemantics::Trail);
        let simple = scan("Knows").recursive(PathSemantics::Simple);
        assert_ne!(plan_cache_key(&trail, &cfg), plan_cache_key(&simple, &cfg));
        // Different bounds change the key even for the same plan.
        let bounded = RecursionConfig {
            max_paths: Some(10),
            ..cfg
        };
        assert_ne!(
            plan_cache_key(&trail, &cfg),
            plan_cache_key(&trail, &bounded)
        );
        // Identical plans agree.
        assert_eq!(plan_cache_key(&trail, &cfg), plan_cache_key(&trail, &cfg));
    }

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let cfg = RecursionConfig::default();
        let q1 = parse_query("MATCH ANY SHORTEST TRAIL p = (?x)-[(:Knows)+]->(?y)").unwrap();
        let q2 =
            parse_query("MATCH ANY SHORTEST TRAIL route = (?from)-[(:Knows)+]->(?to)").unwrap();
        let k1 = plan_cache_key(&q1.to_checked_plan().unwrap(), &cfg);
        let k2 = plan_cache_key(&q2.to_checked_plan().unwrap(), &cfg);
        assert_eq!(k1, k2);
    }

    #[test]
    fn fingerprint_is_stable_and_keys_are_displayable() {
        let cfg = RecursionConfig::default();
        let key = plan_cache_key(&scan("Knows").recursive(PathSemantics::Trail), &cfg);
        let again = plan_cache_key(&scan("Knows").recursive(PathSemantics::Trail), &cfg);
        assert_eq!(key.hash, again.hash);
        assert_eq!(format!("{key}").len(), 16);
    }
}
