//! Recursive-descent parser for extended-GQL path queries (Section 7.1).
//!
//! The grammar, with the standard GQL selector form accepted alongside the
//! paper's extended projection form:
//!
//! ```text
//! pathQuery  := MATCH output restrictor pathPattern groupby? orderby?
//! output     := projection | selector?
//! projection := (ALL | int) PARTITIONS (ALL | int) GROUPS (ALL | int) PATHS
//! selector   := ALL | ANY SHORTEST | ALL SHORTEST | ANY int? |
//!               SHORTEST int GROUP?
//! restrictor := WALK | TRAIL | SIMPLE | ACYCLIC | SHORTEST
//! pathPattern:= (ident '=')? nodePattern edgePattern nodePattern (WHERE condition)?
//! nodePattern:= '(' '?'? ident? (':' ident)? propertyMap? ')'
//! groupby    := GROUP BY (SOURCE | TARGET | LENGTH)+
//! orderby    := ORDER BY (PARTITION | GROUP | PATH)+
//! ```

use crate::ast::{NodePattern, OutputSpec, PathQuery};
use crate::error::ParseError;
use crate::lexer::{tokenize, SpannedToken, Token};
use pathalg_core::condition::{Accessor, CompareOp, Condition, Position};
use pathalg_core::gql::{Restrictor, Selector};
use pathalg_core::ops::group_by::GroupKey;
use pathalg_core::ops::order_by::OrderKey;
use pathalg_core::ops::projection::{ProjectionSpec, Take};
use pathalg_graph::value::Value;
use pathalg_rpq::parse::parse_regex;

/// Parses a path query.
pub fn parse_query(input: &str) -> Result<PathQuery, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = QueryParser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(query)
}

struct QueryParser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl QueryParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), message)
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn is_keyword_ahead(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_ahead(n), Token::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {}", self.peek())))
        }
    }

    fn parse_query(&mut self) -> Result<PathQuery, ParseError> {
        self.expect_keyword("MATCH")?;
        let output = self.parse_output()?;
        let restrictor = self.parse_restrictor()?;
        let path_variable = self.parse_path_variable();
        let source = self.parse_node_pattern()?;
        let regex_text = match self.bump() {
            Token::EdgePattern(text) => text,
            other => {
                return Err(self.error(format!("expected an edge pattern -[…]->, found {other}")))
            }
        };
        let regex = parse_regex(&regex_text)
            .map_err(|e| self.error(format!("invalid regular expression: {e}")))?;
        let target = self.parse_node_pattern()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_condition()?)
        } else {
            None
        };
        let group_by = self.parse_group_by()?;
        let order_by = self.parse_order_by()?;
        Ok(PathQuery {
            output,
            restrictor,
            path_variable,
            source,
            regex,
            target,
            where_clause,
            group_by,
            order_by,
        })
    }

    /// `output`: either the extended projection (`… PARTITIONS … GROUPS …
    /// PATHS`) or a GQL selector (possibly absent, defaulting to `ALL`).
    fn parse_output(&mut self) -> Result<OutputSpec, ParseError> {
        // Extended form: (ALL | int) PARTITIONS …
        let starts_projection = match self.peek() {
            Token::Keyword(k) if k == "ALL" => self.is_keyword_ahead(1, "PARTITIONS"),
            Token::Int(_) => self.is_keyword_ahead(1, "PARTITIONS"),
            _ => false,
        };
        if starts_projection {
            let partitions = self.parse_take()?;
            self.expect_keyword("PARTITIONS")?;
            let groups = self.parse_take()?;
            self.expect_keyword("GROUPS")?;
            let paths = self.parse_take()?;
            self.expect_keyword("PATHS")?;
            return Ok(OutputSpec::Projection(ProjectionSpec::new(
                partitions, groups, paths,
            )));
        }

        // Selector form.
        if self.is_keyword("ALL") && self.is_keyword_ahead(1, "SHORTEST") {
            // Careful: ALL SHORTEST (selector) vs ALL + SHORTEST (restrictor).
            // `ALL SHORTEST` followed by another restrictor keyword or a path
            // pattern start means the SHORTEST belongs to the selector.
            self.bump();
            self.bump();
            return Ok(OutputSpec::Selector(Selector::AllShortest));
        }
        if self.eat_keyword("ANY") {
            if self.eat_keyword("SHORTEST") {
                return Ok(OutputSpec::Selector(Selector::AnyShortest));
            }
            if let Token::Int(k) = self.peek() {
                let k = *k as usize;
                self.bump();
                return Ok(OutputSpec::Selector(Selector::AnyK(k)));
            }
            return Ok(OutputSpec::Selector(Selector::Any));
        }
        if self.is_keyword("SHORTEST") && matches!(self.peek_ahead(1), Token::Int(_)) {
            self.bump();
            let k = match self.bump() {
                Token::Int(k) => k as usize,
                _ => unreachable!("checked by peek_ahead"),
            };
            if self.eat_keyword("GROUP") {
                return Ok(OutputSpec::Selector(Selector::ShortestKGroup(k)));
            }
            return Ok(OutputSpec::Selector(Selector::ShortestK(k)));
        }
        if self.is_keyword("ALL") && !self.is_keyword_ahead(1, "PARTITIONS") {
            self.bump();
            return Ok(OutputSpec::Selector(Selector::All));
        }
        // No selector: default ALL (e.g. `MATCH TRAIL p = …`).
        Ok(OutputSpec::Selector(Selector::All))
    }

    fn parse_take(&mut self) -> Result<Take, ParseError> {
        match self.bump() {
            Token::Keyword(k) if k == "ALL" => Ok(Take::All),
            Token::Int(n) if n > 0 => Ok(Take::Count(n as usize)),
            Token::Int(_) => Err(self.error("projection counts must be positive")),
            other => Err(self.error(format!("expected ALL or a positive integer, found {other}"))),
        }
    }

    fn parse_restrictor(&mut self) -> Result<Restrictor, ParseError> {
        let restrictor = match self.peek() {
            Token::Keyword(k) => match k.as_str() {
                "WALK" => Restrictor::Walk,
                "TRAIL" => Restrictor::Trail,
                "SIMPLE" => Restrictor::Simple,
                "ACYCLIC" => Restrictor::Acyclic,
                "SHORTEST" => Restrictor::Shortest,
                other => {
                    return Err(self.error(format!(
                        "expected a restrictor (WALK, TRAIL, SIMPLE, ACYCLIC or SHORTEST), found {other}"
                    )))
                }
            },
            other => {
                return Err(self.error(format!(
                    "expected a restrictor (WALK, TRAIL, SIMPLE, ACYCLIC or SHORTEST), found {other}"
                )))
            }
        };
        self.bump();
        Ok(restrictor)
    }

    fn parse_path_variable(&mut self) -> Option<String> {
        if let Token::Ident(name) = self.peek() {
            if matches!(self.peek_ahead(1), Token::Eq) {
                let name = name.clone();
                self.bump();
                self.bump();
                return Some(name);
            }
        }
        None
    }

    fn parse_node_pattern(&mut self) -> Result<NodePattern, ParseError> {
        if !matches!(self.bump(), Token::LParen) {
            return Err(self.error("expected '(' to start a node pattern"));
        }
        let mut pattern = NodePattern::default();
        // Optional '?' before the variable.
        if matches!(self.peek(), Token::Question) {
            self.bump();
        }
        if let Token::Ident(name) = self.peek() {
            pattern.variable = Some(name.clone());
            self.bump();
        }
        if matches!(self.peek(), Token::Colon) {
            self.bump();
            match self.bump() {
                Token::Ident(label) => pattern.label = Some(label),
                Token::Keyword(label) => pattern.label = Some(label),
                other => {
                    return Err(self.error(format!("expected a label after ':', found {other}")))
                }
            }
        }
        if matches!(self.peek(), Token::LBrace) {
            self.bump();
            loop {
                if matches!(self.peek(), Token::RBrace) {
                    self.bump();
                    break;
                }
                let key = match self.bump() {
                    Token::Ident(k) => k,
                    Token::Keyword(k) => k.to_lowercase(),
                    other => {
                        return Err(self.error(format!("expected a property name, found {other}")))
                    }
                };
                if !matches!(self.bump(), Token::Colon) {
                    return Err(self.error("expected ':' between property name and value"));
                }
                let value = self.parse_value()?;
                pattern.properties.push((key, value));
                if matches!(self.peek(), Token::Comma) {
                    self.bump();
                }
            }
        }
        if !matches!(self.bump(), Token::RParen) {
            return Err(self.error("expected ')' to close the node pattern"));
        }
        Ok(pattern)
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Int(i) => Ok(Value::Int(i)),
            Token::Float(f) => Ok(Value::Float(f)),
            Token::Keyword(k) if k == "TRUE" => Ok(Value::Bool(true)),
            Token::Keyword(k) if k == "FALSE" => Ok(Value::Bool(false)),
            Token::Keyword(k) if k == "NULL" => Ok(Value::Null),
            other => Err(self.error(format!("expected a literal value, found {other}"))),
        }
    }

    fn parse_group_by(&mut self) -> Result<Option<GroupKey>, ParseError> {
        if !(self.is_keyword("GROUP") && self.is_keyword_ahead(1, "BY")) {
            return Ok(None);
        }
        self.bump();
        self.bump();
        let mut source = false;
        let mut target = false;
        let mut length = false;
        loop {
            if self.eat_keyword("SOURCE") {
                source = true;
            } else if self.eat_keyword("TARGET") {
                target = true;
            } else if self.eat_keyword("LENGTH") {
                length = true;
            } else {
                break;
            }
        }
        if !source && !target && !length {
            return Err(self.error("GROUP BY needs at least one of SOURCE, TARGET, LENGTH"));
        }
        let key = match (source, target, length) {
            (false, false, false) => unreachable!("checked above"),
            (true, false, false) => GroupKey::Source,
            (false, true, false) => GroupKey::Target,
            (false, false, true) => GroupKey::Length,
            (true, true, false) => GroupKey::SourceTarget,
            (true, false, true) => GroupKey::SourceLength,
            (false, true, true) => GroupKey::TargetLength,
            (true, true, true) => GroupKey::SourceTargetLength,
        };
        Ok(Some(key))
    }

    fn parse_order_by(&mut self) -> Result<Option<OrderKey>, ParseError> {
        if !(self.is_keyword("ORDER") && self.is_keyword_ahead(1, "BY")) {
            return Ok(None);
        }
        self.bump();
        self.bump();
        let mut partition = false;
        let mut group = false;
        let mut path = false;
        loop {
            if self.eat_keyword("PARTITION") {
                partition = true;
            } else if self.eat_keyword("GROUP") {
                group = true;
            } else if self.eat_keyword("PATH") {
                path = true;
            } else {
                break;
            }
        }
        if !partition && !group && !path {
            return Err(self.error("ORDER BY needs at least one of PARTITION, GROUP, PATH"));
        }
        let key = match (partition, group, path) {
            (false, false, false) => unreachable!("checked above"),
            (true, false, false) => OrderKey::Partition,
            (false, true, false) => OrderKey::Group,
            (false, false, true) => OrderKey::Path,
            (true, true, false) => OrderKey::PartitionGroup,
            (true, false, true) => OrderKey::PartitionPath,
            (false, true, true) => OrderKey::GroupPath,
            (true, true, true) => OrderKey::PartitionGroupPath,
        };
        Ok(Some(key))
    }

    // ---- selection conditions ----

    fn parse_condition(&mut self) -> Result<Condition, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Condition, ParseError> {
        if self.eat_keyword("NOT") {
            return Ok(self.parse_not()?.not());
        }
        self.parse_condition_primary()
    }

    fn parse_condition_primary(&mut self) -> Result<Condition, ParseError> {
        match self.peek().clone() {
            Token::LParen => {
                self.bump();
                let inner = self.parse_or()?;
                if !matches!(self.bump(), Token::RParen) {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Token::Keyword(k) if k == "BOUND" => {
                self.bump();
                if !matches!(self.bump(), Token::LParen) {
                    return Err(self.error("expected '(' after BOUND"));
                }
                let accessor = self.parse_accessor()?;
                if !matches!(self.bump(), Token::RParen) {
                    return Err(self.error("expected ')' after BOUND argument"));
                }
                Ok(Condition::Bound(accessor))
            }
            Token::Keyword(k) if k == "SUBSTR" => {
                self.bump();
                if !matches!(self.bump(), Token::LParen) {
                    return Err(self.error("expected '(' after SUBSTR"));
                }
                let accessor = self.parse_accessor()?;
                if !matches!(self.bump(), Token::Comma) {
                    return Err(self.error("expected ',' between SUBSTR arguments"));
                }
                let needle = match self.bump() {
                    Token::Str(s) => s,
                    other => {
                        return Err(self.error(format!("expected a string literal, found {other}")))
                    }
                };
                if !matches!(self.bump(), Token::RParen) {
                    return Err(self.error("expected ')' after SUBSTR arguments"));
                }
                Ok(Condition::Substr(accessor, needle))
            }
            _ => {
                let accessor = self.parse_accessor()?;
                let op = match self.bump() {
                    Token::Eq => CompareOp::Eq,
                    Token::Ne => CompareOp::Ne,
                    Token::Lt => CompareOp::Lt,
                    Token::Le => CompareOp::Le,
                    Token::Gt => CompareOp::Gt,
                    Token::Ge => CompareOp::Ge,
                    other => {
                        return Err(
                            self.error(format!("expected a comparison operator, found {other}"))
                        )
                    }
                };
                let value = self.parse_value()?;
                Ok(Condition::Compare {
                    accessor,
                    op,
                    value,
                })
            }
        }
    }

    fn parse_accessor(&mut self) -> Result<Accessor, ParseError> {
        match self.bump() {
            Token::Keyword(k) if k == "LABEL" => {
                if !matches!(self.bump(), Token::LParen) {
                    return Err(self.error("expected '(' after label"));
                }
                let accessor = match self.bump() {
                    Token::Keyword(k) if k == "FIRST" => Accessor::NodeLabel(Position::First),
                    Token::Keyword(k) if k == "LAST" => Accessor::NodeLabel(Position::Last),
                    Token::Keyword(k) if k == "NODE" => {
                        let i = self.parse_indexed_position()?;
                        Accessor::NodeLabel(Position::Index(i))
                    }
                    Token::Keyword(k) if k == "EDGE" => {
                        let i = self.parse_indexed_position()?;
                        Accessor::EdgeLabel(Position::Index(i))
                    }
                    other => {
                        return Err(self.error(format!(
                            "expected first, last, node(i) or edge(i) inside label(), found {other}"
                        )))
                    }
                };
                if !matches!(self.bump(), Token::RParen) {
                    return Err(self.error("expected ')' to close label()"));
                }
                Ok(accessor)
            }
            Token::Keyword(k) if k == "LEN" => {
                if !matches!(self.bump(), Token::LParen) {
                    return Err(self.error("expected '(' after len"));
                }
                if !matches!(self.bump(), Token::RParen) {
                    return Err(self.error("expected ')' after len("));
                }
                Ok(Accessor::Len)
            }
            Token::Keyword(k) if k == "FIRST" => {
                let prop = self.parse_property_suffix()?;
                Ok(Accessor::NodeProperty(Position::First, prop))
            }
            Token::Keyword(k) if k == "LAST" => {
                let prop = self.parse_property_suffix()?;
                Ok(Accessor::NodeProperty(Position::Last, prop))
            }
            Token::Keyword(k) if k == "NODE" => {
                let i = self.parse_indexed_position()?;
                let prop = self.parse_property_suffix()?;
                Ok(Accessor::NodeProperty(Position::Index(i), prop))
            }
            Token::Keyword(k) if k == "EDGE" => {
                let i = self.parse_indexed_position()?;
                let prop = self.parse_property_suffix()?;
                Ok(Accessor::EdgeProperty(Position::Index(i), prop))
            }
            other => Err(self.error(format!(
                "expected an accessor (label(…), first.…, last.…, node(i).…, edge(i).…, len()), found {other}"
            ))),
        }
    }

    fn parse_indexed_position(&mut self) -> Result<usize, ParseError> {
        if !matches!(self.bump(), Token::LParen) {
            return Err(self.error("expected '('"));
        }
        let i = match self.bump() {
            Token::Int(i) if i >= 1 => i as usize,
            other => return Err(self.error(format!("expected a 1-based position, found {other}"))),
        };
        if !matches!(self.bump(), Token::RParen) {
            return Err(self.error("expected ')'"));
        }
        Ok(i)
    }

    fn parse_property_suffix(&mut self) -> Result<String, ParseError> {
        if !matches!(self.bump(), Token::Dot) {
            return Err(self.error("expected '.' before a property name"));
        }
        match self.bump() {
            Token::Ident(p) => Ok(p),
            Token::Keyword(p) => Ok(p.to_lowercase()),
            other => Err(self.error(format!("expected a property name, found {other}"))),
        }
    }
}

/// Parses a standalone selection condition — the RPQ surface's `where(…)`
/// clause reuses the full GQL condition grammar through this entry point.
pub(crate) fn parse_condition_text(input: &str) -> Result<Condition, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = QueryParser { tokens, pos: 0 };
    let condition = parser.parse_condition()?;
    parser.expect_eof()?;
    Ok(condition)
}

/// Parses a standalone node pattern such as `(?x:Person {name:"Moe"})` — the
/// RPQ surface's head-argument syntax reuses the GQL node-pattern grammar.
pub(crate) fn parse_node_pattern_text(input: &str) -> Result<NodePattern, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = QueryParser { tokens, pos: 0 };
    let pattern = parser.parse_node_pattern()?;
    parser.expect_eof()?;
    Ok(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_rpq::regex::LabelRegex;

    #[test]
    fn parses_the_section_7_1_example() {
        let q = parse_query(
            "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) \
             GROUP BY TARGET ORDER BY PATH",
        )
        .unwrap();
        assert_eq!(
            q.output,
            OutputSpec::Projection(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)))
        );
        assert_eq!(q.restrictor, Restrictor::Trail);
        assert_eq!(q.path_variable.as_deref(), Some("p"));
        assert_eq!(q.source.variable.as_deref(), Some("x"));
        assert_eq!(q.target.variable.as_deref(), Some("y"));
        assert_eq!(q.regex, LabelRegex::label("Knows").star());
        assert_eq!(q.group_by, Some(GroupKey::Target));
        assert_eq!(q.order_by, Some(OrderKey::Path));
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn parses_standard_gql_selector_form() {
        let q = parse_query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::AnyShortest));
        assert_eq!(q.restrictor, Restrictor::Trail);
        assert_eq!(q.regex, LabelRegex::label("Knows").plus());

        let q = parse_query("MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::AllShortest));
        assert_eq!(q.restrictor, Restrictor::Walk);

        let q = parse_query("MATCH SHORTEST 3 GROUP ACYCLIC p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::ShortestKGroup(3)));
        assert_eq!(q.restrictor, Restrictor::Acyclic);

        let q = parse_query("MATCH SHORTEST 2 SIMPLE p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::ShortestK(2)));

        let q = parse_query("MATCH ANY 4 WALK p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::AnyK(4)));

        let q = parse_query("MATCH ANY TRAIL p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::Any));

        let q = parse_query("MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::All));
    }

    #[test]
    fn selector_defaults_to_all_when_absent() {
        let q = parse_query("MATCH TRAIL p = (?x)-[:Knows]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::All));
        assert_eq!(q.restrictor, Restrictor::Trail);
    }

    #[test]
    fn shortest_restrictor_without_count_is_a_restrictor() {
        let q = parse_query("MATCH SHORTEST p = (?x)-[:Knows+]->(?y)").unwrap();
        assert_eq!(q.output, OutputSpec::Selector(Selector::All));
        assert_eq!(q.restrictor, Restrictor::Shortest);
    }

    #[test]
    fn parses_node_patterns_with_labels_and_properties() {
        let q = parse_query(
            "MATCH ALL TRAIL p = (?x:Person {name:\"Moe\"})-[:Knows+]->(?y:Person {name:\"Apu\", age: 39})",
        )
        .unwrap();
        assert_eq!(q.source.label.as_deref(), Some("Person"));
        assert_eq!(
            q.source.properties,
            vec![("name".into(), Value::str("Moe"))]
        );
        assert_eq!(q.target.properties.len(), 2);
        assert_eq!(q.target.properties[1], ("age".into(), Value::Int(39)));
    }

    #[test]
    fn parses_anonymous_and_unconstrained_nodes() {
        let q = parse_query("MATCH ALL WALK ()-[:Knows]->()").unwrap();
        assert!(q.source.is_unconstrained());
        assert!(q.source.variable.is_none());
        assert!(q.path_variable.is_none());
        let q = parse_query("MATCH ALL WALK (x)-[:Knows]->(y {name:\"Apu\"})").unwrap();
        assert_eq!(q.source.variable.as_deref(), Some("x"));
        assert!(!q.target.is_unconstrained());
    }

    #[test]
    fn parses_where_conditions() {
        let q = parse_query(
            "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y) \
             WHERE first.name = \"Moe\" AND NOT (last.age < 30 OR len() >= 4)",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let text = w.to_string();
        assert!(text.contains("first.name = \"Moe\""));
        assert!(text.contains("NOT"));
        assert!(text.contains("last.age < 30"));
        assert!(text.contains("len() >= 4"));
    }

    #[test]
    fn parses_label_and_builtin_conditions() {
        let q = parse_query(
            "MATCH ALL TRAIL p = (?x)-[:_+]->(?y) \
             WHERE label(edge(1)) = \"Knows\" AND label(first) = \"Person\" \
               AND bound(edge(2).since) AND substr(first.name, \"o\") \
               AND node(2).name != \"Bart\" AND edge(1).since > 2005",
        )
        .unwrap();
        let text = q.where_clause.unwrap().to_string();
        assert!(text.contains("label(edge(1)) = \"Knows\""));
        assert!(text.contains("label(first) = \"Person\""));
        assert!(text.contains("bound(edge(2).since)"));
        assert!(text.contains("substr(first.name, \"o\")"));
        assert!(text.contains("node(2).name != \"Bart\""));
        assert!(text.contains("edge(1).since > 2005"));
    }

    #[test]
    fn parses_all_group_by_and_order_by_combinations() {
        let cases = [
            ("GROUP BY SOURCE", GroupKey::Source),
            ("GROUP BY TARGET", GroupKey::Target),
            ("GROUP BY LENGTH", GroupKey::Length),
            ("GROUP BY SOURCE TARGET", GroupKey::SourceTarget),
            ("GROUP BY SOURCE LENGTH", GroupKey::SourceLength),
            ("GROUP BY TARGET LENGTH", GroupKey::TargetLength),
            (
                "GROUP BY SOURCE TARGET LENGTH",
                GroupKey::SourceTargetLength,
            ),
        ];
        for (clause, expected) in cases {
            let q = parse_query(&format!(
                "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS TRAIL p = (?x)-[:Knows+]->(?y) {clause}"
            ))
            .unwrap();
            assert_eq!(q.group_by, Some(expected), "{clause}");
        }
        let cases = [
            ("ORDER BY PARTITION", OrderKey::Partition),
            ("ORDER BY GROUP", OrderKey::Group),
            ("ORDER BY PATH", OrderKey::Path),
            ("ORDER BY PARTITION GROUP", OrderKey::PartitionGroup),
            ("ORDER BY PARTITION PATH", OrderKey::PartitionPath),
            ("ORDER BY GROUP PATH", OrderKey::GroupPath),
            (
                "ORDER BY PARTITION GROUP PATH",
                OrderKey::PartitionGroupPath,
            ),
        ];
        for (clause, expected) in cases {
            let q = parse_query(&format!(
                "MATCH ALL PARTITIONS ALL GROUPS ALL PATHS TRAIL p = (?x)-[:Knows+]->(?y) \
                 GROUP BY SOURCE TARGET {clause}"
            ))
            .unwrap();
            assert_eq!(q.order_by, Some(expected), "{clause}");
        }
    }

    #[test]
    fn parse_errors_are_informative() {
        let err = parse_query("RETURN p").unwrap_err();
        assert!(err.message.contains("MATCH"));
        let err = parse_query("MATCH ALL BOGUS p = (?x)-[:a]->(?y)").unwrap_err();
        assert!(err.message.contains("restrictor"));
        let err = parse_query("MATCH ALL TRAIL p = (?x)-[:a]->(?y) WHERE name = 1").unwrap_err();
        assert!(err.message.contains("accessor"));
        let err = parse_query("MATCH ALL TRAIL p = (?x)(?y)").unwrap_err();
        assert!(err.message.contains("edge pattern"));
        let err = parse_query("MATCH ALL TRAIL p = (?x)-[:a(]->(?y)").unwrap_err();
        assert!(err.message.contains("regular expression"));
        let err = parse_query("MATCH 0 PARTITIONS ALL GROUPS ALL PATHS TRAIL p = (?x)-[:a]->(?y)")
            .unwrap_err();
        assert!(err.message.contains("positive"));
        let err = parse_query("MATCH ALL TRAIL p = (?x)-[:a]->(?y) GROUP BY").unwrap_err();
        assert!(err.message.contains("GROUP BY"));
        let err = parse_query("MATCH ALL TRAIL p = (?x)-[:a]->(?y) trailing garbage").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn query_display_round_trips_key_clauses() {
        let q = parse_query(
            "MATCH ALL PARTITIONS ALL GROUPS 1 PATHS TRAIL p = (?x)-[(:Knows)*]->(?y) \
             GROUP BY TARGET ORDER BY PATH",
        )
        .unwrap();
        let text = q.to_string();
        assert!(text.contains("MATCH (*,*,1) TRAIL"));
        assert!(text.contains("GROUP BY T"));
        assert!(text.contains("ORDER BY A"));
    }
}
