//! The unified multi-surface front door.
//!
//! Three surfaces produce the same [`QueryIr`]:
//!
//! * [`QuerySurface::Gql`] — the extended-GQL grammar of Section 7.1
//!   ([`crate::parse_query`]);
//! * [`QuerySurface::Rpq`] — the datalog-ish rule syntax
//!   ([`crate::rpq_surface::parse_rpq`]);
//! * [`QuerySurface::Ir`] — raw JSON `query_ir_v1` documents
//!   ([`QueryIr::from_json_str`]).
//!
//! [`parse_surface`] dispatches on the surface tag, and
//! [`parse_to_checked_plan`] chains the one checked lowering
//! ([`crate::ir::lower_to_checked_plan`]) behind it. Because the IR is
//! α-canonical and the lowering deterministic, the same logical query written
//! in any surface yields structurally equal plans — and therefore the same
//! plan-cache key, the same admission decision and one in-flight evaluation.

use crate::error::ParseError;
use crate::ir::{lower_to_checked_plan, QueryIr};
use crate::parser::parse_query;
use crate::rpq_surface::parse_rpq;
use pathalg_core::error::AlgebraError;
use pathalg_core::expr::PlanExpr;
use std::fmt;

/// Which textual surface a query was written in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuerySurface {
    /// The extended-GQL grammar (`MATCH … = (?x)-[…]->(?y) …`).
    Gql,
    /// The datalog-ish RPQ rule syntax (`reach(x, y) :- :Knows+, trail.`).
    Rpq,
    /// A raw JSON `query_ir_v1` document.
    Ir,
}

impl QuerySurface {
    /// Every surface, in wire-tag order.
    pub const ALL: [QuerySurface; 3] = [QuerySurface::Gql, QuerySurface::Rpq, QuerySurface::Ir];

    /// The wire tag used by the server protocol (`QUERY GQL …`).
    pub fn tag(self) -> &'static str {
        match self {
            QuerySurface::Gql => "GQL",
            QuerySurface::Rpq => "RPQ",
            QuerySurface::Ir => "IR",
        }
    }

    /// Zero-based position of the surface in [`QuerySurface::ALL`] — the
    /// index per-surface metric arrays are keyed by.
    pub fn index(self) -> usize {
        match self {
            QuerySurface::Gql => 0,
            QuerySurface::Rpq => 1,
            QuerySurface::Ir => 2,
        }
    }

    /// Lowercase label used in metric expositions (`surface="gql"`).
    pub fn metric_label(self) -> &'static str {
        match self {
            QuerySurface::Gql => "gql",
            QuerySurface::Rpq => "rpq",
            QuerySurface::Ir => "ir",
        }
    }

    /// Parses a wire tag back into a surface (case-insensitive).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag.to_ascii_uppercase().as_str() {
            "GQL" => Some(QuerySurface::Gql),
            "RPQ" => Some(QuerySurface::Rpq),
            "IR" => Some(QuerySurface::Ir),
            _ => None,
        }
    }
}

impl fmt::Display for QuerySurface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A parse failure from any surface, tagged with the surface it came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurfaceError {
    /// The surface whose parser rejected the text.
    pub surface: QuerySurface,
    /// The underlying parse error message (with position where available).
    pub message: String,
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} surface: {}", self.surface, self.message)
    }
}

impl std::error::Error for SurfaceError {}

impl SurfaceError {
    fn new(surface: QuerySurface, message: impl fmt::Display) -> Self {
        Self {
            surface,
            message: message.to_string(),
        }
    }
}

impl From<(QuerySurface, ParseError)> for SurfaceError {
    fn from((surface, e): (QuerySurface, ParseError)) -> Self {
        SurfaceError::new(surface, e)
    }
}

/// Parses `text` under the given surface into the shared [`QueryIr`].
pub fn parse_surface(surface: QuerySurface, text: &str) -> Result<QueryIr, SurfaceError> {
    match surface {
        QuerySurface::Gql => parse_query(text)
            .map(|q| q.to_ir())
            .map_err(|e| SurfaceError::new(surface, e)),
        QuerySurface::Rpq => parse_rpq(text).map_err(|e| SurfaceError::new(surface, e)),
        QuerySurface::Ir => QueryIr::from_json_str(text).map_err(|e| SurfaceError::new(surface, e)),
    }
}

/// Parses `text` under the given surface and lowers it through the one
/// checked pipeline. The error type distinguishes a surface-level parse
/// failure from a typed IR-validation failure.
pub fn parse_to_checked_plan(
    surface: QuerySurface,
    text: &str,
) -> Result<PlanExpr, SurfaceParseOrLowerError> {
    let ir = parse_surface(surface, text).map_err(SurfaceParseOrLowerError::Parse)?;
    lower_to_checked_plan(&ir).map_err(SurfaceParseOrLowerError::Lower)
}

/// Either stage of [`parse_to_checked_plan`] can fail: the surface parser or
/// the checked lowering.
#[derive(Clone, Debug, PartialEq)]
pub enum SurfaceParseOrLowerError {
    /// The surface parser rejected the text.
    Parse(SurfaceError),
    /// The IR failed validation or the plan failed to type-check.
    Lower(AlgebraError),
}

impl fmt::Display for SurfaceParseOrLowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurfaceParseOrLowerError::Parse(e) => e.fmt(f),
            SurfaceParseOrLowerError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SurfaceParseOrLowerError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::plan_cache_key;
    use pathalg_core::ops::recursive::RecursionConfig;

    const GQL: &str =
        "MATCH ANY SHORTEST TRAIL p = (?x {name:\"Moe\"})-[(:Likes/:Has_creator)+]->(?y)";
    const RPQ: &str = "reach(x {name:\"Moe\"}, y) :- (:Likes/:Has_creator)+, trail, any_shortest.";

    fn ir_doc() -> String {
        parse_surface(QuerySurface::Gql, GQL)
            .unwrap()
            .to_json_string()
    }

    #[test]
    fn all_three_surfaces_produce_the_same_ir_and_plan_key() {
        let gql = parse_surface(QuerySurface::Gql, GQL).unwrap();
        let rpq = parse_surface(QuerySurface::Rpq, RPQ).unwrap();
        let ir = parse_surface(QuerySurface::Ir, &ir_doc()).unwrap();
        assert_eq!(gql, rpq);
        assert_eq!(gql, ir);

        let recursion = RecursionConfig::default();
        let keys: Vec<_> = [&gql, &rpq, &ir]
            .iter()
            .map(|q| plan_cache_key(&lower_to_checked_plan(q).unwrap(), &recursion))
            .collect();
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[0], keys[2]);
    }

    #[test]
    fn surface_tags_round_trip() {
        for surface in QuerySurface::ALL {
            assert_eq!(QuerySurface::from_tag(surface.tag()), Some(surface));
            assert_eq!(
                QuerySurface::from_tag(&surface.tag().to_lowercase()),
                Some(surface)
            );
        }
        assert_eq!(QuerySurface::from_tag("SQL"), None);
    }

    #[test]
    fn errors_are_tagged_with_their_surface() {
        let e = parse_surface(QuerySurface::Gql, "MASH ALL").unwrap_err();
        assert_eq!(e.surface, QuerySurface::Gql);
        assert!(e.to_string().starts_with("GQL surface:"), "{e}");

        let e = parse_surface(QuerySurface::Rpq, "nope").unwrap_err();
        assert_eq!(e.surface, QuerySurface::Rpq);

        let e = parse_surface(QuerySurface::Ir, "{}").unwrap_err();
        assert_eq!(e.surface, QuerySurface::Ir);
        assert!(e.message.contains("version"), "{e}");
    }

    #[test]
    fn checked_lowering_distinguishes_parse_from_validation_failures() {
        let parse_err = parse_to_checked_plan(QuerySurface::Rpq, "nope").unwrap_err();
        assert!(matches!(parse_err, SurfaceParseOrLowerError::Parse(_)));

        // Structurally valid JSON, semantically invalid IR: selector + group_by.
        let mut ir = parse_surface(QuerySurface::Gql, GQL).unwrap();
        ir.group_by = Some(pathalg_core::ops::group_by::GroupKey::Target);
        let lower_err = parse_to_checked_plan(QuerySurface::Ir, &ir.to_json_string()).unwrap_err();
        assert!(matches!(lower_err, SurfaceParseOrLowerError::Lower(_)));
    }
}
