//! Shared helpers for the benchmark harness.
//!
//! Every bench target corresponds to a table or figure of the paper (see
//! DESIGN.md §2 for the index) plus the scaling and ablation studies. The
//! helpers here build the workload graphs and the recurring plans so the
//! individual bench files stay focused on the measurement.

#![forbid(unsafe_code)]

use pathalg_core::condition::Condition;
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::fixtures::figure1::Figure1;
use pathalg_graph::generator::snb::{snb_label_csr, snb_like_graph, SnbConfig};
use pathalg_graph::generator::structured::{chain_graph, cycle_graph, ladder_graph};
use pathalg_graph::graph::PropertyGraph;

/// The Figure 1 graph (7 nodes, 11 edges) — the paper's running example.
pub fn figure1() -> Figure1 {
    Figure1::new()
}

/// An SNB-shaped graph with `persons` Person nodes (messages = 2 × persons),
/// deterministic for a fixed scale.
pub fn snb(persons: usize) -> PropertyGraph {
    snb_like_graph(&SnbConfig::scale(persons, 0xBEEF + persons as u64))
}

/// The label-restricted CSR of [`snb`] streamed directly — byte-identical
/// to `CsrGraph::with_label(&snb(persons), label)` but without ever
/// materialising the property graph, which is what lets `scaling_million`
/// and `repro scale` reach 10⁶ persons.
pub fn snb_csr(persons: usize, label: &str) -> CsrGraph {
    snb_label_csr(&SnbConfig::scale(persons, 0xBEEF + persons as u64), label)
}

/// A Knows-labelled chain of `n` nodes (acyclic, so even unbounded walks are
/// finite).
pub fn chain(n: usize) -> PropertyGraph {
    chain_graph(n, "Knows")
}

/// A Knows-labelled directed cycle of `n` nodes (the smallest graph where the
/// restrictors matter).
pub fn cycle(n: usize) -> PropertyGraph {
    cycle_graph(n, "Knows")
}

/// A Knows-labelled ladder with `rungs` squares (many same-length shortest
/// paths — the interesting case for ALL SHORTEST / SHORTEST k GROUP).
pub fn ladder(rungs: usize) -> PropertyGraph {
    ladder_graph(rungs, "Knows")
}

/// `σ label(edge(1)) = label (Edges(G))` — the scan every example plan starts
/// from.
pub fn label_scan(label: &str) -> PlanExpr {
    PlanExpr::edges().select(Condition::edge_label(1, label))
}

/// `ϕ_semantics(σ Knows (Edges(G)))` — the recursive core of most benches.
pub fn knows_closure(semantics: PathSemantics) -> PlanExpr {
    label_scan("Knows").recursive(semantics)
}

/// The Figure 2 plan (Moe→Apu over Knows+ | (Likes/Has_creator)+) under the
/// given semantics.
pub fn figure2_plan(semantics: PathSemantics) -> PlanExpr {
    let knows = label_scan("Knows").recursive(semantics);
    let outer = label_scan("Likes")
        .join(label_scan("Has_creator"))
        .recursive(semantics);
    knows.union(outer).select(
        Condition::first_property("name", "Moe").and(Condition::last_property("name", "Apu")),
    )
}

/// The Figure 3 plan (friends and friends-of-friends of Moe).
pub fn figure3_plan() -> PlanExpr {
    let knows = label_scan("Knows");
    knows
        .clone()
        .union(knows.clone().join(knows))
        .select(Condition::first_property("name", "Moe"))
}

/// The Figure 6(a) plan: filter above the join.
pub fn figure6_basic() -> PlanExpr {
    label_scan("Knows")
        .join(label_scan("Knows"))
        .select(Condition::first_property("name", "Moe"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_produce_expected_shapes() {
        assert_eq!(figure1().graph.node_count(), 7);
        assert_eq!(snb(10).node_count(), 30);
        assert_eq!(chain(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert!(ladder(3).edge_count() > 0);
        assert!(figure2_plan(PathSemantics::Simple).type_check().is_ok());
        assert!(figure3_plan().type_check().is_ok());
        assert!(figure6_basic().type_check().is_ok());
        assert_eq!(knows_closure(PathSemantics::Trail).operator_count(), 3);
    }
}
