//! Scaling study — the parallel CSR-native frontier engine for ϕ vs. the
//! semi-naïve fixpoint, swept over thread count × graph size.
//!
//! This is the headline benchmark of the frontier engine (DESIGN.md §7): the
//! same `ϕShortest(σKnows(Edges))` workload is evaluated by the semi-naïve
//! fixpoint, by `phi_frontier` at 1/2/4/8 threads, and by the CSR-native
//! specialisation that never materialises the base relation. The length
//! bound keeps the closure finite on the dense Knows subgraph so the sweep
//! measures engine overhead, not result-set explosion. A bounded-walk sweep
//! exercises the unrestricted semantics on the same graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::snb;
use pathalg_core::condition::Condition;
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::ops::selection::selection;
use pathalg_core::pathset::PathSet;
use pathalg_engine::exec::ExecutionConfig;
use pathalg_engine::physical::frontier::{phi_frontier, phi_frontier_csr};
use pathalg_engine::physical::phi_seminaive;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::graph::PropertyGraph;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn knows_base(graph: &PropertyGraph) -> PathSet {
    selection(
        graph,
        &Condition::edge_label(1, "Knows"),
        &PathSet::edges(graph),
    )
}

fn bounded(max_length: usize) -> RecursionConfig {
    RecursionConfig {
        max_length: Some(max_length),
        max_paths: None,
    }
}

fn bench_shortest_knows(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_parallel/shortest_knows");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let cfg = bounded(4);
    for persons in [200usize, 800] {
        let graph = snb(persons);
        let base = knows_base(&graph);
        let csr = CsrGraph::with_label(&graph, "Knows");
        group.bench_with_input(BenchmarkId::new("seminaive", persons), &base, |b, base| {
            b.iter(|| {
                phi_seminaive(PathSemantics::Shortest, base, &cfg)
                    .unwrap()
                    .len()
            })
        });
        for threads in THREADS {
            let exec = ExecutionConfig::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("frontier/t{threads}"), persons),
                &base,
                |b, base| {
                    b.iter(|| {
                        phi_frontier(PathSemantics::Shortest, base, &cfg, &exec)
                            .unwrap()
                            .len()
                    })
                },
            );
        }
        // The CSR-native fast path: expansion directly over the
        // label-restricted adjacency snapshot, base never materialised.
        let exec = ExecutionConfig::with_threads(4);
        group.bench_with_input(
            BenchmarkId::new("frontier_csr/t4", persons),
            &csr,
            |b, csr| {
                b.iter(|| {
                    phi_frontier_csr(csr, PathSemantics::Shortest, &cfg, &exec)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_bounded_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_parallel/bounded_walk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
    let cfg = bounded(3);
    for persons in [200usize, 800] {
        let graph = snb(persons);
        let base = knows_base(&graph);
        group.bench_with_input(BenchmarkId::new("seminaive", persons), &base, |b, base| {
            b.iter(|| {
                phi_seminaive(PathSemantics::Walk, base, &cfg)
                    .unwrap()
                    .len()
            })
        });
        for threads in [1usize, 4] {
            let exec = ExecutionConfig::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("frontier/t{threads}"), persons),
                &base,
                |b, base| {
                    b.iter(|| {
                        phi_frontier(PathSemantics::Walk, base, &cfg, &exec)
                            .unwrap()
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shortest_knows, bench_bounded_walk);
criterion_main!(benches);
