//! Figure 3 — the core-algebra plan (selection, join, union only).
//!
//! The friends / friends-of-friends query is non-recursive, so it isolates the
//! cost of the core operators. Measured on Figure 1 and on SNB-shaped graphs
//! of growing size (the join is the dominant cost and grows with the square of
//! the Knows degree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{figure1, figure3_plan, snb};
use pathalg_core::eval::Evaluator;
use std::time::Duration;

fn bench_figure1(c: &mut Criterion) {
    let f = figure1();
    let plan = figure3_plan();
    let mut group = c.benchmark_group("fig3/figure1");
    group
        .sample_size(30)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("friends_of_friends", |b| {
        b.iter(|| Evaluator::new(&f.graph).eval_paths(&plan).unwrap().len())
    });
    group.finish();
}

fn bench_snb_scaling(c: &mut Criterion) {
    let plan = figure3_plan();
    let mut group = c.benchmark_group("fig3/snb_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for persons in [50usize, 100, 200, 400] {
        let graph = snb(persons);
        group.bench_with_input(BenchmarkId::from_parameter(persons), &graph, |b, graph| {
            b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1, bench_snb_scaling);
criterion_main!(benches);
