//! Scaling study — parallel lazy PMR enumeration (DESIGN.md §10) vs. the
//! serial PMR, swept over worker threads 1/2/4/8.
//!
//! Two workload families, both over the shapes PR 3/4 made output-sensitive
//! but left serial:
//!
//! * **SNB join-chain, partition-limited** — `(:Likes/:Has_creator)+` on a
//!   hub-creator SNB variant (fewer messages than persons, so creators are
//!   hubs), sliced as `π(64,*,3)(γST(ϕWalk≤10(⋈)))`. The partition limit
//!   closes inside a hub source whose own admitted groups fill quickly,
//!   while an earlier source has already exhausted with an admitted group
//!   below its cap (too few walks exist) — so the serial evaluation's
//!   *global* completion check stays blocked and it must expand the closing
//!   hub to exhaustion. The parallel workers' per-partition accounting
//!   (DESIGN.md §10) is per *source*: once the shared
//!   [`pathalg_core::budget::SliceBudget`] proves the limit closed, a worker
//!   stops the hub the moment the hub's own admitted groups fill. The cut
//!   holds at every thread count — which is what makes the series meaningful
//!   on a single-CPU container, where threads add scheduling cost but no
//!   cores (the same caveat BENCH_PR2 documents for the §7 engine).
//! * **K-graph closure** — the full two-hop trail closure of K4 (a root-ϕ
//!   join-chain drain, the `choose_scan_phi_impl` dispatch): nothing to
//!   slice, so this family tracks the batch scheduler's overhead against
//!   the serial drain.
//!
//! Output equality between every series is pinned in
//! `tests/cross_validation.rs`; this bench measures the work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_core::ops::group_by::GroupKey;
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::slice::SliceSpec;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};
use pathalg_graph::generator::structured::complete_graph;
use pathalg_graph::graph::PropertyGraph;
use pathalg_pmr::parallel::{self, ParallelConfig};
use pathalg_pmr::Pmr;
use std::sync::Arc;
use std::time::Duration;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn shared_hops(graph: &PropertyGraph, labels: &[&str]) -> Arc<[CsrGraph]> {
    labels
        .iter()
        .map(|l| CsrGraph::with_label(graph, l))
        .collect()
}

/// `π(64,*,3)(γST(ϕWalk≤10((:Likes/:Has_creator)+)))` on the hub-creator SNB
/// variant: the partition-limited slicing selector the parallel layer's
/// per-partition accounting was built for (see the module docs for why the
/// serial evaluation must over-expand here).
fn bench_snb_chain_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lazy_parallel/snb_chain_partitions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let cfg = RecursionConfig {
        max_length: Some(10),
        max_paths: None,
    };
    let spec = SliceSpec {
        group_key: GroupKey::SourceTarget,
        per_group: Some(3),
        max_partitions: Some(64),
        ordered_by_length: false,
    };
    for persons in [100usize, 200] {
        let graph = snb_like_graph(&SnbConfig {
            persons,
            messages: persons / 4,
            likes_per_person: 6,
            knows_per_person: 3,
            seed: 42,
            ..SnbConfig::default()
        });
        let hops = shared_hops(&graph, &["Likes", "Has_creator"]);
        group.bench_with_input(BenchmarkId::new("serial-pmr", persons), &hops, |b, hops| {
            b.iter(|| {
                let mut pmr = Pmr::from_shared_join(hops.clone(), PathSemantics::Walk, cfg);
                pmr.sliced(&spec).unwrap().len()
            })
        });
        for threads in THREADS {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel-lazy/t{threads}"), persons),
                &hops,
                |b, hops| {
                    let factory = || Pmr::from_shared_join(hops.clone(), PathSemantics::Walk, cfg);
                    let sources = factory().sources();
                    let pc = ParallelConfig {
                        threads,
                        batch_size: 8,
                    };
                    b.iter(|| {
                        parallel::sliced(&factory, &spec, &sources, None, &pc, cfg.max_paths)
                            .unwrap()
                            .paths
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The full two-hop trail closure of K4 (21 000 trails): a root-ϕ chain
/// drain with nothing to slice, tracking the batch scheduler's overhead and
/// thread behaviour against the serial drain.
fn bench_kgraph_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lazy_parallel/kgraph_closure");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let cfg = RecursionConfig {
        max_length: None,
        max_paths: None,
    };
    let n = 4usize;
    let graph = complete_graph(n, "k");
    let hops = shared_hops(&graph, &["k", "k"]);
    group.bench_with_input(BenchmarkId::new("serial-pmr", n), &hops, |b, hops| {
        b.iter(|| {
            let mut pmr = Pmr::from_shared_join(hops.clone(), PathSemantics::Trail, cfg);
            pmr.enumerate_all().unwrap().len()
        })
    });
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new(format!("parallel-lazy/t{threads}"), n),
            &hops,
            |b, hops| {
                let factory = || Pmr::from_shared_join(hops.clone(), PathSemantics::Trail, cfg);
                let sources = factory().sources();
                let pc = ParallelConfig {
                    threads,
                    batch_size: 1,
                };
                b.iter(|| {
                    parallel::enumerate_all(&factory, &sources, None, &pc, cfg.max_paths)
                        .unwrap()
                        .paths
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snb_chain_partitions, bench_kgraph_closure);
criterion_main!(benches);
