//! Figure 2 — the recursive Moe→Apu plan.
//!
//! Measures the evaluation of the introduction's query
//! `(Moe)-[(:Knows+)|(:Likes/:Has_creator)+]->(Apu)` under the restricted
//! semantics on the Figure 1 graph, end to end through the evaluator, and the
//! same query text through the full parse → optimize → execute pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{figure1, figure2_plan};
use pathalg_core::eval::{EvalConfig, Evaluator};
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_engine::runner::QueryRunner;
use std::time::Duration;

fn bench_figure2_semantics(c: &mut Criterion) {
    let f = figure1();
    let mut group = c.benchmark_group("fig2/semantics");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for semantics in [
        PathSemantics::Simple,
        PathSemantics::Trail,
        PathSemantics::Acyclic,
        PathSemantics::Shortest,
    ] {
        let plan = figure2_plan(semantics);
        group.bench_with_input(
            BenchmarkId::from_parameter(semantics.keyword()),
            &plan,
            |b, plan| b.iter(|| Evaluator::new(&f.graph).eval_paths(plan).unwrap().len()),
        );
    }
    let bounded_walk = figure2_plan(PathSemantics::Walk);
    group.bench_function("WALK_bounded_6", |b| {
        b.iter(|| {
            Evaluator::with_config(&f.graph, EvalConfig::with_walk_bound(6))
                .eval_paths(&bounded_walk)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_figure2_end_to_end(c: &mut Criterion) {
    let f = figure1();
    let query = "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})";
    let mut group = c.benchmark_group("fig2/end_to_end");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("parse_optimize_execute", |b| {
        let runner = QueryRunner::new(&f.graph);
        b.iter(|| runner.run(query).unwrap().paths().len())
    });
    group.bench_function("parse_only", |b| {
        b.iter(|| pathalg_parser::parse_query(query).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_figure2_semantics, bench_figure2_end_to_end);
criterion_main!(benches);
