//! Scaling study — million-scale enumeration (DESIGN.md §15).
//!
//! The point of the compact arena, bitmap frontiers, and recycled scratch
//! buffers is that graph size stops being the limiting factor: a 10⁶-person
//! SNB graph (3 × 10⁶ nodes, 7 × 10⁶ edges) must stream into a CSR, and the
//! lazy PMR must enumerate over it at a throughput independent of the node
//! count. Four families, each at 10⁵ and 10⁶ persons:
//!
//! * `stream_knows_csr` — [`pathalg_graph::generator::snb::snb_label_csr`]:
//!   generator → CSR with no intermediate property graph;
//! * `walk2_count100k` — lazy PMR drain of the first 10⁵ bounded walks
//!   (compact arena + recycled level buffers, no path reconstruction);
//! * `shortest2_count100k` — the same drain under Shortest (adds the bitmap
//!   visited set and the lazily-built distance table per source);
//! * `likes_creator_count100k` — the 2-hop `Likes/Has_creator` join
//!   expansion (per-parent boundary buffers of the join machinery).
//!
//! The count drains are capped at 10⁵ emits: enumeration work is bounded by
//! the cap, so the ids measure steady-state per-path cost while the graph
//! behind them scales 10×. The full graphs are built once per size outside
//! the timing loops; `PATHALG_BENCH_MAX_MS` caps each measurement window
//! (a routine slower than the window still reports its single iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::snb_csr;
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_graph::csr::CsrGraph;
use pathalg_pmr::Pmr;
use std::sync::Arc;
use std::time::Duration;

const SIZES: [usize; 2] = [100_000, 1_000_000];
const DRAIN: usize = 100_000;

fn two_hop() -> RecursionConfig {
    RecursionConfig {
        max_length: Some(2),
        max_paths: None,
    }
}

fn count_csr(csr: &Arc<CsrGraph>, semantics: PathSemantics) -> usize {
    let mut pmr = Pmr::from_shared_csr(Arc::clone(csr), semantics, two_hop());
    pmr.count_batch(DRAIN).unwrap()
}

fn bench_stream_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_million/stream_knows_csr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(50));
    for n in SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| snb_csr(n, "Knows").edge_count())
        });
    }
    group.finish();
}

fn bench_lazy_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_million/lazy_count");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(50));
    for n in SIZES {
        let knows = Arc::new(snb_csr(n, "Knows"));
        group.bench_with_input(BenchmarkId::new("walk2_count100k", n), &knows, |b, csr| {
            b.iter(|| count_csr(csr, PathSemantics::Walk))
        });
        group.bench_with_input(
            BenchmarkId::new("shortest2_count100k", n),
            &knows,
            |b, csr| b.iter(|| count_csr(csr, PathSemantics::Shortest)),
        );
    }
    group.finish();
}

fn bench_join_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_million/join_count");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(50));
    for n in SIZES {
        let hops: Arc<[CsrGraph]> = vec![snb_csr(n, "Likes"), snb_csr(n, "Has_creator")].into();
        group.bench_with_input(
            BenchmarkId::new("likes_creator_count100k", n),
            &hops,
            |b, hops| {
                b.iter(|| {
                    let mut pmr =
                        Pmr::from_shared_join(Arc::clone(hops), PathSemantics::Walk, two_hop());
                    pmr.count_batch(DRAIN).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stream_csr,
    bench_lazy_counts,
    bench_join_counts
);
criterion_main!(benches);
