//! Scaling study — the query service layer (DESIGN.md §11): plan cache and
//! in-flight deduplication.
//!
//! Three scenarios over the same recursive trail query on SNB-shaped graphs:
//!
//! * `cold_plan` — every iteration bumps the stats epoch first, so the plan
//!   cache entry is stale and `prepare` pays the full optimize→cost→closure
//!   estimation pipeline (plus the stats recomputation the bump implies).
//! * `warm_cache` — `prepare` of the same query at a stable epoch: two
//!   cache lookups. Expected orders of magnitude below `cold_plan` — that
//!   gap is exactly what the plan cache saves every repeat request.
//! * `dedup/solo` vs `dedup/herd8` — one submitter vs 8 threads submitting
//!   the identical query concurrently. The wait-map coalesces the herd onto
//!   one leader evaluation, so the herd's wall-clock should sit near the
//!   solo latency (≈1× the work), not near 8× of it.
//!
//! The engine runs single-threaded here so the herd comparison measures
//! deduplication, not intra-query parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::snb;
use pathalg_core::ops::recursive::RecursionConfig;
use pathalg_engine::exec::ExecutionConfig;
use pathalg_server::{QueryService, ServiceConfig};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The workload: an unanchored bounded trail closure — enough evaluation
/// work that coalescing a herd onto one leader is visible.
const QUERY: &str = "MATCH ALL TRAIL p = (?x)-[(:Knows)+]->(?y)";

const SCALES: [usize; 2] = [200, 800];

fn service(persons: usize) -> Arc<QueryService> {
    let graph = Arc::new(snb(persons));
    let mut config = ServiceConfig::with_execution(ExecutionConfig::with_threads(1));
    // Keep the closure finite and the admission gate out of the measurement:
    // this bench times the service plumbing, not rejection.
    config.recursion = RecursionConfig {
        max_length: Some(4),
        max_paths: None,
    };
    config.admission_ceiling = None;
    Arc::new(QueryService::new(graph, config))
}

fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_service/plan_cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    for persons in SCALES {
        let svc = service(persons);
        group.bench_with_input(BenchmarkId::new("cold_plan", persons), &svc, |b, svc| {
            b.iter(|| {
                // A fresh epoch invalidates the cached plan, so prepare pays
                // stats recomputation + optimize/cost/closure estimation.
                svc.bump_epoch();
                svc.prepare(QUERY).unwrap().0.closures.len()
            })
        });
        svc.prepare(QUERY).unwrap();
        group.bench_with_input(BenchmarkId::new("warm_cache", persons), &svc, |b, svc| {
            b.iter(|| svc.prepare(QUERY).unwrap().0.closures.len())
        });
    }
    group.finish();
}

fn bench_dedup_herd(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_service/dedup");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    for persons in SCALES {
        let svc = service(persons);
        svc.submit(QUERY).unwrap();
        group.bench_with_input(BenchmarkId::new("solo", persons), &svc, |b, svc| {
            b.iter(|| svc.submit(QUERY).unwrap().outcome.paths.len())
        });
        group.bench_with_input(BenchmarkId::new("herd8", persons), &svc, |b, svc| {
            b.iter(|| {
                thread::scope(|scope| {
                    let workers: Vec<_> = (0..8)
                        .map(|_| scope.spawn(|| svc.submit(QUERY).unwrap().outcome.paths.len()))
                        .collect();
                    workers
                        .into_iter()
                        .map(|w| w.join().expect("herd submitter panicked"))
                        .sum::<usize>()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_cache, bench_dedup_herd);
criterion_main!(benches);
