//! Table 7 — every selector × restrictor combination, evaluated end to end.
//!
//! GQL allows 7 selectors × 4 restrictors; Table 7 shows how each combination
//! translates into a γ/τ/π pipeline around ϕ. This bench evaluates all 28
//! translated plans over the Figure 1 graph (walks bounded to length 4) and
//! the seven selectors over a ladder graph, where many equal-length shortest
//! paths make the selector choice matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{figure1, label_scan, ladder};
use pathalg_core::eval::{EvalConfig, Evaluator};
use pathalg_core::gql::{translate, Restrictor, Selector};
use std::time::Duration;

fn bench_all_28_combinations(c: &mut Criterion) {
    let f = figure1();
    let mut group = c.benchmark_group("table7/figure1_all_combinations");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    for restrictor in Restrictor::GQL {
        for selector in Selector::all_with_k(2) {
            let plan = translate(selector, restrictor, label_scan("Knows"));
            let id = format!(
                "{}+{}",
                selector.keyword().replace(' ', "_"),
                restrictor.keyword()
            );
            group.bench_with_input(BenchmarkId::from_parameter(id), &plan, |b, plan| {
                b.iter(|| {
                    Evaluator::with_config(&f.graph, EvalConfig::with_walk_bound(4))
                        .eval_paths(plan)
                        .unwrap()
                        .len()
                })
            });
        }
    }
    group.finish();
}

fn bench_selectors_on_ladder(c: &mut Criterion) {
    let graph = ladder(5);
    let mut group = c.benchmark_group("table7/ladder_selectors_acyclic");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for selector in Selector::all_with_k(2) {
        let plan = translate(selector, Restrictor::Acyclic, label_scan("Knows"));
        group.bench_with_input(
            BenchmarkId::from_parameter(selector.keyword().replace(' ', "_")),
            &plan,
            |b, plan| b.iter(|| Evaluator::new(&graph).eval_paths(plan).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_28_combinations,
    bench_selectors_on_ladder
);
criterion_main!(benches);
