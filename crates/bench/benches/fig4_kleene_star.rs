//! Figure 4 — the Kleene-star plan `(Likes/Has_creator)*`.
//!
//! The star translation adds `∪ Nodes(G)` to the recursive branch, so the
//! result always contains the zero-length paths. Measured on Figure 1 under
//! the restricted semantics and on SNB-shaped graphs under the shortest-path
//! semantics (the outer Likes/Has_creator cycle is what makes the unrestricted
//! variant explode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{figure1, snb};
use pathalg_core::eval::{EvalConfig, Evaluator};
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_rpq::compile::compile_to_algebra;
use pathalg_rpq::parse::parse_regex;
use std::time::Duration;

fn star_plan(semantics: PathSemantics) -> pathalg_core::expr::PlanExpr {
    let regex = parse_regex("(:Likes/:Has_creator)*").unwrap();
    compile_to_algebra(&regex, semantics)
}

fn bench_figure1_star(c: &mut Criterion) {
    let f = figure1();
    let mut group = c.benchmark_group("fig4/figure1_star");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for semantics in [
        PathSemantics::Trail,
        PathSemantics::Acyclic,
        PathSemantics::Simple,
        PathSemantics::Shortest,
    ] {
        let plan = star_plan(semantics);
        group.bench_with_input(
            BenchmarkId::from_parameter(semantics.keyword()),
            &plan,
            |b, plan| b.iter(|| Evaluator::new(&f.graph).eval_paths(plan).unwrap().len()),
        );
    }
    let walk = star_plan(PathSemantics::Walk);
    group.bench_function("WALK_bounded_6", |b| {
        b.iter(|| {
            Evaluator::with_config(&f.graph, EvalConfig::with_walk_bound(6))
                .eval_paths(&walk)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_snb_star_shortest(c: &mut Criterion) {
    let plan = star_plan(PathSemantics::Shortest);
    let mut group = c.benchmark_group("fig4/snb_star_shortest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for persons in [20usize, 40, 80] {
        let graph = snb(persons);
        group.bench_with_input(BenchmarkId::from_parameter(persons), &graph, |b, graph| {
            b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1_star, bench_snb_star_shortest);
criterion_main!(benches);
