//! Scaling study — lazy endpoint-keyed PMR arena joins vs. materialise-then-
//! join (DESIGN.md §9).
//!
//! The workload is the one the lazy join exists for: slicing selector
//! pipelines over `ϕ((σℓ1(E) ⋈ σℓ2(E)))` — the SNB `(:Likes/:Has_creator)+`
//! pattern (Person → Message → Person hops) and two-hop trail closures on
//! complete graphs. The materialised side hash-joins the label scans, runs
//! the engine's frontier expansion, and slices with the γ/τ/π operators; the
//! lazy side expands the concatenation through per-hop CSR endpoint indexes
//! (`Pmr::from_label_chain`) with the slice limits pushed into the
//! enumeration. Both produce byte-identical output (pinned in
//! `tests/cross_validation.rs`); only the work differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::snb;
use pathalg_core::condition::Condition;
use pathalg_core::ops::group_by::{group_by, GroupKey};
use pathalg_core::ops::join::join;
use pathalg_core::ops::order_by::{order_by, OrderKey};
use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::ops::selection::selection;
use pathalg_core::pathset::PathSet;
use pathalg_core::slice::SliceSpec;
use pathalg_engine::exec::ExecutionConfig;
use pathalg_engine::physical::frontier::phi_frontier;
use pathalg_graph::generator::structured::complete_graph;
use pathalg_graph::graph::PropertyGraph;
use pathalg_pmr::Pmr;
use std::time::Duration;

fn top1_spec() -> (ProjectionSpec, SliceSpec) {
    (
        ProjectionSpec::new(Take::All, Take::All, Take::Count(1)),
        SliceSpec {
            group_key: GroupKey::SourceTarget,
            per_group: Some(1),
            max_partitions: None,
            ordered_by_length: true,
        },
    )
}

/// Materialise-then-join: hash-join the label scans, frontier-expand the
/// closure, then γST → τA → π(*,*,1).
fn materialized_top1(
    graph: &PropertyGraph,
    labels: &[&str],
    semantics: PathSemantics,
    cfg: &RecursionConfig,
) -> usize {
    let base = labels
        .iter()
        .map(|l| selection(graph, &Condition::edge_label(1, *l), &PathSet::edges(graph)))
        .reduce(|a, b| join(&a, &b))
        .expect("at least one label");
    let closure = phi_frontier(semantics, &base, cfg, &ExecutionConfig::default()).unwrap();
    let (spec, _) = top1_spec();
    projection(
        &spec,
        &order_by(OrderKey::Path, &group_by(GroupKey::SourceTarget, &closure)),
    )
    .len()
}

/// Lazy: per-hop CSR endpoint indexes, sliced enumeration with reachability
/// source stops — neither join side, the join result, nor the closure is
/// materialised.
fn lazy_top1(
    graph: &PropertyGraph,
    labels: &[&str],
    semantics: PathSemantics,
    cfg: RecursionConfig,
) -> usize {
    let (_, slice) = top1_spec();
    let mut pmr = Pmr::from_label_chain(graph, labels, semantics, cfg);
    pmr.sliced(&slice).unwrap().len()
}

/// The output-sensitive SNB `(:Likes/:Has_creator)+` workload: `ANY 3`
/// paths for the first 8 source partitions (`π(8,*,3)(γS(ϕ(⋈)))`). The
/// partition limit lets the lazy join skip whole sources — the materialised
/// side still pays for the full join and closure.
fn bench_snb_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_join/snb_topk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let labels = ["Likes", "Has_creator"];
    let cfg = RecursionConfig {
        max_length: Some(8),
        max_paths: None,
    };
    let spec = ProjectionSpec::new(Take::Count(8), Take::All, Take::Count(3));
    let slice = SliceSpec {
        group_key: GroupKey::Source,
        per_group: Some(3),
        max_partitions: Some(8),
        ordered_by_length: false,
    };
    for persons in [100usize, 200] {
        let graph = snb(persons);
        group.bench_with_input(BenchmarkId::new("materialized", persons), &graph, |b, g| {
            b.iter(|| {
                let base = labels
                    .iter()
                    .map(|l| selection(g, &Condition::edge_label(1, *l), &PathSet::edges(g)))
                    .reduce(|a, b| join(&a, &b))
                    .expect("two labels");
                let closure = phi_frontier(
                    PathSemantics::Walk,
                    &base,
                    &cfg,
                    &ExecutionConfig::default(),
                )
                .unwrap();
                projection(&spec, &group_by(GroupKey::Source, &closure)).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("lazy", persons), &graph, |b, g| {
            b.iter(|| {
                let mut pmr = Pmr::from_label_chain(g, &labels, PathSemantics::Walk, cfg);
                pmr.sliced(&slice).unwrap().len()
            })
        });
    }
    group.finish();
}

/// The all-pairs variant: `SHORTEST 1` per endpoint pair. Every source must
/// expand to its full eccentricity, so the win here is the skipped hash
/// join, base materialisation and path reconstruction — a constant factor,
/// not an asymptotic cut.
fn bench_snb_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_join/snb_allpairs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let labels = ["Likes", "Has_creator"];
    let cfg = RecursionConfig {
        max_length: Some(6),
        max_paths: None,
    };
    for persons in [100usize, 200] {
        let graph = snb(persons);
        group.bench_with_input(BenchmarkId::new("materialized", persons), &graph, |b, g| {
            b.iter(|| materialized_top1(g, &labels, PathSemantics::Walk, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("lazy", persons), &graph, |b, g| {
            b.iter(|| lazy_top1(g, &labels, PathSemantics::Walk, cfg))
        });
    }
    group.finish();
}

/// Two-hop trail closures on complete graphs: the segment fan-out is (n−1)²
/// per step, so the materialised closure explodes while the sliced answer is
/// one path per ordered pair.
fn bench_kgraph_trails(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_join/kgraph_trail");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let labels = ["k", "k"];
    let cfg = RecursionConfig {
        max_length: None,
        max_paths: None,
    };
    let n = 4usize;
    let graph = complete_graph(n, "k");
    group.bench_with_input(BenchmarkId::new("materialized", n), &graph, |b, g| {
        b.iter(|| materialized_top1(g, &labels, PathSemantics::Trail, &cfg))
    });
    group.bench_with_input(BenchmarkId::new("lazy", n), &graph, |b, g| {
        b.iter(|| lazy_top1(g, &labels, PathSemantics::Trail, cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snb_topk,
    bench_snb_allpairs,
    bench_kgraph_trails
);
criterion_main!(benches);
