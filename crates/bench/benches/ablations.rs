//! Ablation studies for the design choices called out in DESIGN.md §5.
//!
//! 1. ϕ physical implementation: semi-naïve fixpoint vs. literal Definition
//!    4.1 vs. DFS enumeration vs. BFS shortest vs. the automaton-product
//!    baseline.
//! 2. Join strategy: endpoint hash join vs. nested-loop join.
//! 3. Restrictor pushed into ϕ vs. post-filtering a bounded walk.
//! 4. Projection with and without a preceding order-by (Algorithm 1's remark
//!    that sorting is unnecessary when no τ was applied).
//! 5. Optimizer on vs. off for the ALL SHORTEST WALK pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{cycle, figure1, label_scan, snb};
use pathalg_core::condition::Condition;
use pathalg_core::eval::{EvalConfig, Evaluator};
use pathalg_core::gql::{translate, Restrictor, Selector};
use pathalg_core::ops::group_by::{group_by, GroupKey};
use pathalg_core::ops::join::{join, nested_loop_join};
use pathalg_core::ops::order_by::{order_by, OrderKey};
use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};
use pathalg_core::ops::recursive::{recursive, PathSemantics, RecursionConfig};
use pathalg_core::ops::selection::selection;
use pathalg_core::optimizer::Optimizer;
use pathalg_core::pathset::PathSet;
use pathalg_engine::physical::{phi_bfs_shortest, phi_dfs, phi_naive, phi_seminaive};
use pathalg_rpq::automaton_eval::AutomatonEvaluator;
use pathalg_rpq::parse::parse_regex;
use std::time::Duration;

fn knows_base(graph: &pathalg_graph::graph::PropertyGraph) -> PathSet {
    selection(
        graph,
        &Condition::edge_label(1, "Knows"),
        &PathSet::edges(graph),
    )
}

fn bench_phi_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/phi_implementations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    let cfg = RecursionConfig::default();
    for n in [8usize, 16] {
        let graph = cycle(n);
        let base = knows_base(&graph);
        group.bench_with_input(BenchmarkId::new("seminaive_trail", n), &base, |b, base| {
            b.iter(|| {
                phi_seminaive(PathSemantics::Trail, base, &cfg)
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_trail", n), &base, |b, base| {
            b.iter(|| phi_naive(PathSemantics::Trail, base, &cfg).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("dfs_trail", n), &base, |b, base| {
            b.iter(|| phi_dfs(PathSemantics::Trail, base, &cfg).unwrap().len())
        });
        group.bench_with_input(
            BenchmarkId::new("seminaive_shortest", n),
            &base,
            |b, base| {
                b.iter(|| {
                    phi_seminaive(PathSemantics::Shortest, base, &cfg)
                        .unwrap()
                        .len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("bfs_shortest", n), &base, |b, base| {
            b.iter(|| phi_bfs_shortest(base, &cfg).unwrap().len())
        });
        // The classical automaton-product baseline answering the same RPQ.
        let regex = parse_regex(":Knows+").unwrap();
        group.bench_with_input(
            BenchmarkId::new("automaton_trail", n),
            &graph,
            |b, graph| {
                let eval = AutomatonEvaluator::new(graph, &regex);
                b.iter(|| eval.eval_all(PathSemantics::Trail, &cfg).unwrap().len())
            },
        );
    }
    group.finish();
}

fn bench_join_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/join_strategy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for persons in [100usize, 300] {
        let graph = snb(persons);
        let knows = knows_base(&graph);
        group.bench_with_input(BenchmarkId::new("hash", persons), &knows, |b, knows| {
            b.iter(|| join(knows, knows).len())
        });
        group.bench_with_input(
            BenchmarkId::new("nested_loop", persons),
            &knows,
            |b, knows| b.iter(|| nested_loop_join(knows, knows).len()),
        );
    }
    group.finish();
}

fn bench_restrictor_pushdown_vs_postfilter(c: &mut Criterion) {
    // Enforcing TRAIL inside ϕ vs. generating bounded walks and filtering.
    let mut group = c.benchmark_group("ablation/restrictor_pushdown");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for n in [6usize, 8, 10] {
        let graph = cycle(n);
        let base = knows_base(&graph);
        group.bench_with_input(BenchmarkId::new("phi_trail", n), &base, |b, base| {
            b.iter(|| {
                recursive(PathSemantics::Trail, base, &RecursionConfig::default())
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("walk_then_filter", n), &base, |b, base| {
            b.iter(|| {
                let walks = recursive(
                    PathSemantics::Walk,
                    base,
                    &RecursionConfig::with_max_length(n),
                )
                .unwrap();
                walks.iter().filter(|p| p.is_trail()).count()
            })
        });
    }
    group.finish();
}

fn bench_projection_sort_shortcut(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/projection_sort");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let graph = cycle(24);
    let base = knows_base(&graph);
    let trails = recursive(PathSemantics::Trail, &base, &RecursionConfig::default()).unwrap();
    let space = group_by(GroupKey::SourceTarget, &trails);
    let spec = ProjectionSpec::new(Take::All, Take::All, Take::Count(1));
    group.bench_function("project_without_order_by", |b| {
        b.iter(|| projection(&spec, &space).len())
    });
    group.bench_function("order_by_then_project", |b| {
        b.iter(|| projection(&spec, &order_by(OrderKey::Path, &space)).len())
    });
    group.finish();
}

fn bench_optimizer_on_off(c: &mut Criterion) {
    let f = figure1();
    let plan = translate(Selector::AllShortest, Restrictor::Walk, label_scan("Knows"));
    let optimized = Optimizer::new().optimize(&plan);
    let mut group = c.benchmark_group("ablation/optimizer_on_off");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("all_shortest_walk_unoptimized_bounded", |b| {
        b.iter(|| {
            Evaluator::with_config(&f.graph, EvalConfig::with_walk_bound(6))
                .eval_paths(&plan)
                .unwrap()
                .len()
        })
    });
    group.bench_function("all_shortest_walk_rewritten_to_shortest", |b| {
        b.iter(|| {
            Evaluator::new(&f.graph)
                .eval_paths(&optimized)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_phi_implementations,
    bench_join_strategies,
    bench_restrictor_pushdown_vs_postfilter,
    bench_projection_sort_shortcut,
    bench_optimizer_on_off
);
criterion_main!(benches);
