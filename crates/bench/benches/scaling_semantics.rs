//! Scaling study — the recursive operator's semantics vs. graph size and
//! topology.
//!
//! Chains isolate the cost of path construction without any filtering effect
//! (all semantics coincide); cycles separate the restricted semantics from one
//! another; SNB-shaped graphs show the shortest-path semantics (the only one
//! that stays polynomial on dense cyclic data) at realistic shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{chain, cycle, label_scan, snb};
use pathalg_core::eval::Evaluator;
use pathalg_core::ops::recursive::PathSemantics;
use std::time::Duration;

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_semantics/chain_walk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let plan = label_scan("Knows").recursive(PathSemantics::Walk);
    for n in [16usize, 32, 64, 128] {
        let graph = chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len())
        });
    }
    group.finish();
}

fn bench_cycle_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_semantics/cycle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for n in [8usize, 16, 32] {
        let graph = cycle(n);
        for semantics in [
            PathSemantics::Trail,
            PathSemantics::Simple,
            PathSemantics::Shortest,
        ] {
            let plan = label_scan("Knows").recursive(semantics);
            group.bench_with_input(
                BenchmarkId::new(semantics.keyword(), n),
                &graph,
                |b, graph| b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len()),
            );
        }
    }
    group.finish();
}

fn bench_snb_shortest_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_semantics/snb_shortest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    let plan = label_scan("Knows").recursive(PathSemantics::Shortest);
    for persons in [20usize, 40, 80] {
        let graph = snb(persons);
        group.bench_with_input(BenchmarkId::from_parameter(persons), &graph, |b, graph| {
            b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_scaling,
    bench_cycle_scaling,
    bench_snb_shortest_scaling
);
criterion_main!(benches);
