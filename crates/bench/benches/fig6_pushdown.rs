//! Figure 6 — predicate pushdown: the basic plan vs. the optimized plan.
//!
//! The paper's classical example of logical optimization. The bench evaluates
//! the same query with the selection above the join (Figure 6a) and pushed
//! below it (Figure 6b), on Figure 1 and on SNB-shaped graphs, plus the cost
//! of running the optimizer itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{figure1, figure6_basic, snb};
use pathalg_core::eval::Evaluator;
use pathalg_core::optimizer::Optimizer;
use std::time::Duration;

fn bench_basic_vs_optimized(c: &mut Criterion) {
    let basic = figure6_basic();
    let optimized = Optimizer::new().optimize(&basic);
    assert_ne!(basic, optimized, "pushdown must fire for this plan");

    let mut group = c.benchmark_group("fig6/basic_vs_optimized");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));

    let f = figure1();
    group.bench_function("figure1/basic", |b| {
        b.iter(|| Evaluator::new(&f.graph).eval_paths(&basic).unwrap().len())
    });
    group.bench_function("figure1/optimized", |b| {
        b.iter(|| {
            Evaluator::new(&f.graph)
                .eval_paths(&optimized)
                .unwrap()
                .len()
        })
    });

    for persons in [100usize, 300] {
        let graph = snb(persons);
        group.bench_with_input(
            BenchmarkId::new("snb_basic", persons),
            &graph,
            |b, graph| b.iter(|| Evaluator::new(graph).eval_paths(&basic).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("snb_optimized", persons),
            &graph,
            |b, graph| b.iter(|| Evaluator::new(graph).eval_paths(&optimized).unwrap().len()),
        );
    }
    group.finish();
}

fn bench_optimizer_overhead(c: &mut Criterion) {
    let basic = figure6_basic();
    let mut group = c.benchmark_group("fig6/optimizer_overhead");
    group
        .sample_size(30)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("optimize_figure6_plan", |b| {
        let optimizer = Optimizer::new();
        b.iter(|| optimizer.optimize(&basic))
    });
    group.finish();
}

criterion_group!(benches, bench_basic_vs_optimized, bench_optimizer_overhead);
criterion_main!(benches);
