//! Scaling study — lazy PMR top-k enumeration vs. full materialisation
//! (DESIGN.md §8).
//!
//! The workload is the one the PMR subsystem exists for: a slicing
//! `π(*,*,1)(τA(γST(ϕ(…))))` pipeline (the `SHORTEST 1` selector) over
//! bounded walks on a *complete* directed graph — the canonical cyclic
//! generator where the materialised closure grows as `(n-1)^L` per source
//! while the sliced answer is one path per ordered node pair. The
//! materialised side runs the engine's CSR frontier expansion followed by
//! the γ/τ/π operators; the lazy side runs `Pmr::sliced`, which stops each
//! source after one level thanks to the reachability analysis. Both produce
//! byte-identical output (pinned in `tests/cross_validation.rs`); only the
//! work differs. A Trail variant and a sparse SNB Shortest variant complete
//! the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::snb;
use pathalg_core::ops::group_by::{group_by, GroupKey};
use pathalg_core::ops::order_by::{order_by, OrderKey};
use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::slice::SliceSpec;
use pathalg_engine::exec::ExecutionConfig;
use pathalg_engine::physical::frontier::phi_frontier_csr;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::generator::structured::complete_graph;
use pathalg_pmr::Pmr;
use std::time::Duration;

fn top1_spec() -> (ProjectionSpec, SliceSpec) {
    (
        ProjectionSpec::new(Take::All, Take::All, Take::Count(1)),
        SliceSpec {
            group_key: GroupKey::SourceTarget,
            per_group: Some(1),
            max_partitions: None,
            ordered_by_length: true,
        },
    )
}

/// Full materialisation: CSR frontier closure, then γST → τA → π(*,*,1).
fn materialized_top1(csr: &CsrGraph, semantics: PathSemantics, cfg: &RecursionConfig) -> usize {
    let closure = phi_frontier_csr(csr, semantics, cfg, &ExecutionConfig::default()).unwrap();
    let (spec, _) = top1_spec();
    projection(
        &spec,
        &order_by(OrderKey::Path, &group_by(GroupKey::SourceTarget, &closure)),
    )
    .len()
}

/// Lazy: PMR sliced evaluation with reachability-based source stops.
fn lazy_top1(csr: &CsrGraph, semantics: PathSemantics, cfg: RecursionConfig) -> usize {
    let (_, slice) = top1_spec();
    let mut pmr = Pmr::from_csr(csr.clone(), semantics, cfg);
    pmr.sliced(&slice).unwrap().len()
}

fn bench_walk_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lazy/walk_top1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    let cfg = RecursionConfig {
        max_length: Some(4),
        max_paths: None,
    };
    for n in [6usize, 7] {
        let graph = complete_graph(n, "k");
        let csr = CsrGraph::with_label(&graph, "k");
        group.bench_with_input(BenchmarkId::new("materialized", n), &csr, |b, csr| {
            b.iter(|| materialized_top1(csr, PathSemantics::Walk, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("lazy", n), &csr, |b, csr| {
            b.iter(|| lazy_top1(csr, PathSemantics::Walk, cfg))
        });
    }
    group.finish();
}

fn bench_trail_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lazy/trail_top1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150));
    // Trails need no length bound; K4 already has 21 000 of them (K5 blows
    // past 50 million, which is the point of the lazy path but too slow to
    // materialise in a bench loop).
    let cfg = RecursionConfig {
        max_length: None,
        max_paths: None,
    };
    let n = 4usize;
    let graph = complete_graph(n, "k");
    let csr = CsrGraph::with_label(&graph, "k");
    group.bench_with_input(BenchmarkId::new("materialized", n), &csr, |b, csr| {
        b.iter(|| materialized_top1(csr, PathSemantics::Trail, &cfg))
    });
    group.bench_with_input(BenchmarkId::new("lazy", n), &csr, |b, csr| {
        b.iter(|| lazy_top1(csr, PathSemantics::Trail, cfg))
    });
    group.finish();
}

fn bench_shortest_topk(c: &mut Criterion) {
    // Shortest saturates on its own, so the lazy gain here is the compact
    // arena + skip-without-reconstruction, not an asymptotic cut: the
    // interesting comparison is that lazy is not *slower* on the workload
    // the other engine paths already handle well.
    let mut group = c.benchmark_group("scaling_lazy/shortest_top1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));
    let cfg = RecursionConfig {
        max_length: Some(4),
        max_paths: None,
    };
    let graph = snb(200);
    let csr = CsrGraph::with_label(&graph, "Knows");
    group.bench_with_input(BenchmarkId::new("materialized", 200), &csr, |b, csr| {
        b.iter(|| materialized_top1(csr, PathSemantics::Shortest, &cfg))
    });
    group.bench_with_input(BenchmarkId::new("lazy", 200), &csr, |b, csr| {
        b.iter(|| lazy_top1(csr, PathSemantics::Shortest, cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_topk,
    bench_trail_topk,
    bench_shortest_topk
);
criterion_main!(benches);
