//! Scaling study — the core operators (σ, ⋈, ∪) and the graph atoms as the
//! graph grows.
//!
//! The paper has no wall-clock evaluation; a system adopting the algebra needs
//! to know how the individual operators behave with input size. This bench
//! sweeps SNB-shaped graphs from 100 to 800 persons and measures each core
//! operator in isolation on materialised path sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pathalg_bench::snb;
use pathalg_core::condition::Condition;
use pathalg_core::ops::join::{join, nested_loop_join};
use pathalg_core::ops::selection::selection;
use pathalg_core::ops::union::union;
use pathalg_core::pathset::PathSet;
use std::time::Duration;

fn bench_atoms_and_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/atoms_and_selection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for persons in [100usize, 200, 400, 800] {
        let graph = snb(persons);
        group.throughput(Throughput::Elements(graph.edge_count() as u64));
        group.bench_with_input(BenchmarkId::new("edges_atom", persons), &graph, |b, g| {
            b.iter(|| PathSet::edges(g).len())
        });
        let edges = PathSet::edges(&graph);
        let cond = Condition::edge_label(1, "Knows");
        group.bench_with_input(
            BenchmarkId::new("selection_knows", persons),
            &edges,
            |b, edges| b.iter(|| selection(&graph, &cond, edges).len()),
        );
        let prop_cond = Condition::first_property("age", 25i64);
        group.bench_with_input(
            BenchmarkId::new("selection_property", persons),
            &edges,
            |b, edges| b.iter(|| selection(&graph, &prop_cond, edges).len()),
        );
    }
    group.finish();
}

fn bench_join_and_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/join_and_union");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200));
    for persons in [100usize, 200, 400] {
        let graph = snb(persons);
        let knows = selection(
            &graph,
            &Condition::edge_label(1, "Knows"),
            &PathSet::edges(&graph),
        );
        let likes = selection(
            &graph,
            &Condition::edge_label(1, "Likes"),
            &PathSet::edges(&graph),
        );
        group.throughput(Throughput::Elements(knows.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("hash_join_knows_knows", persons),
            &knows,
            |b, knows| b.iter(|| join(knows, knows).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("nested_loop_join_knows_knows", persons),
            &knows,
            |b, knows| b.iter(|| nested_loop_join(knows, knows).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("union_knows_likes", persons),
            &(knows.clone(), likes),
            |b, (knows, likes)| b.iter(|| union(knows, likes).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_atoms_and_selection, bench_join_and_union);
criterion_main!(benches);
