//! Figure 5 — the path-mode pipeline γST → τA → π(*,*,1).
//!
//! Measures the extended operators both individually (over pre-computed trail
//! sets of controlled size, produced on directed cycles) and as the complete
//! Figure 5 pipeline including the recursive operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{cycle, figure1, label_scan};
use pathalg_core::condition::Condition;
use pathalg_core::eval::Evaluator;
use pathalg_core::ops::group_by::{group_by, GroupKey};
use pathalg_core::ops::order_by::{order_by, OrderKey};
use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};
use pathalg_core::ops::recursive::{recursive, PathSemantics, RecursionConfig};
use pathalg_core::ops::selection::selection;
use pathalg_core::pathset::PathSet;
use std::time::Duration;

/// The trail closure of a Knows cycle with `n` nodes: n·(n-1) + n paths.
fn trails_on_cycle(n: usize) -> PathSet {
    let graph = cycle(n);
    let base = selection(
        &graph,
        &Condition::edge_label(1, "Knows"),
        &PathSet::edges(&graph),
    );
    recursive(PathSemantics::Trail, &base, &RecursionConfig::default()).unwrap()
}

fn bench_extended_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/extended_operators");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for n in [8usize, 16, 32] {
        let paths = trails_on_cycle(n);
        group.bench_with_input(BenchmarkId::new("group_by_ST", n), &paths, |b, paths| {
            b.iter(|| group_by(GroupKey::SourceTarget, paths).partition_count())
        });
        let space = group_by(GroupKey::SourceTarget, &paths);
        group.bench_with_input(BenchmarkId::new("order_by_A", n), &space, |b, space| {
            b.iter(|| order_by(OrderKey::Path, space).path_count())
        });
        let ordered = order_by(OrderKey::Path, &space);
        let spec = ProjectionSpec::new(Take::All, Take::All, Take::Count(1));
        group.bench_with_input(
            BenchmarkId::new("project_first", n),
            &ordered,
            |b, ordered| b.iter(|| projection(&spec, ordered).len()),
        );
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let f = figure1();
    let plan = label_scan("Knows")
        .recursive(PathSemantics::Trail)
        .group_by(GroupKey::SourceTarget)
        .order_by(OrderKey::Path)
        .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
    let mut group = c.benchmark_group("fig5/full_pipeline");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200));
    group.bench_function("figure1_any_shortest_trail", |b| {
        b.iter(|| Evaluator::new(&f.graph).eval_paths(&plan).unwrap().len())
    });
    for n in [8usize, 16, 32] {
        let graph = cycle(n);
        group.bench_with_input(BenchmarkId::new("cycle", n), &graph, |b, graph| {
            b.iter(|| Evaluator::new(graph).eval_paths(&plan).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extended_operators, bench_full_pipeline);
criterion_main!(benches);
