//! Table 3 — the recursive operator under the five path semantics.
//!
//! The paper's Table 3 enumerates which `Knows+` paths survive each semantics
//! on the Figure 1 graph. This bench measures what that costs: ϕ is evaluated
//! under Walk (bounded), Trail, Acyclic, Simple and Shortest over the Figure 1
//! graph and over directed cycles, the topology that separates the semantics
//! most sharply (Walk is infinite, Trail/Simple are quadratic, Shortest is
//! linear per source).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathalg_bench::{cycle, figure1, label_scan};
use pathalg_core::eval::{EvalConfig, Evaluator};
use pathalg_core::ops::recursive::PathSemantics;
use std::time::Duration;

fn bench_figure1_semantics(c: &mut Criterion) {
    let f = figure1();
    let mut group = c.benchmark_group("table3/figure1_knows_plus");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for semantics in PathSemantics::ALL {
        let plan = label_scan("Knows").recursive(semantics);
        let config = if semantics == PathSemantics::Walk {
            EvalConfig::with_walk_bound(4)
        } else {
            EvalConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(semantics.keyword()),
            &plan,
            |b, plan| {
                b.iter(|| {
                    Evaluator::with_config(&f.graph, config)
                        .eval_paths(plan)
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_cycle_semantics(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/cycle_knows_plus");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for n in [4usize, 8, 12, 16] {
        let graph = cycle(n);
        for semantics in [
            PathSemantics::Trail,
            PathSemantics::Acyclic,
            PathSemantics::Simple,
            PathSemantics::Shortest,
        ] {
            let plan = label_scan("Knows").recursive(semantics);
            group.bench_with_input(
                BenchmarkId::new(semantics.keyword(), n),
                &plan,
                |b, plan| b.iter(|| Evaluator::new(&graph).eval_paths(plan).unwrap().len()),
            );
        }
        // Walk needs a bound on a cycle; bound it to the cycle length.
        let plan = label_scan("Knows").recursive(PathSemantics::Walk);
        group.bench_with_input(BenchmarkId::new("WALK_bounded", n), &plan, |b, plan| {
            b.iter(|| {
                Evaluator::with_config(&graph, EvalConfig::with_walk_bound(n))
                    .eval_paths(plan)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1_semantics, bench_cycle_semantics);
criterion_main!(benches);
