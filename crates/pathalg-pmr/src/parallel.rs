//! Parallel lazy PMR enumeration: per-source batch scheduling with a
//! deterministic batch-order merge.
//!
//! The §8/§9 expansions share no state across sources, so a lazy enumeration
//! parallelises the same way the materialising frontier engine does
//! (DESIGN.md §7): partition the source schedule into contiguous batches,
//! run **one independent batch-restricted [`Pmr`] per batch** on the scoped
//! thread pool (`vendor/mini_pool`), and merge per-batch output in batch
//! order. Because each batch enumerates its slice of the schedule in the
//! serial canonical order and batches are merged in schedule order, the
//! merged stream is **byte-identical to the serial PMR at every thread
//! count** — the contract `tests/cross_validation.rs` pins at 1/2/8 threads.
//!
//! Three mechanisms make the parallel run output-sensitive rather than
//! merely parallel:
//!
//! * **Shared path budget.** `max_paths` is enforced through one atomic
//!   [`PathBudget`] shared by all batch workers (each batch-restricted
//!   expansion claims candidates against it), so full drains keep the serial
//!   success/failure outcome — the total step count of a full enumeration is
//!   schedule-independent.
//! * **Shared slice budget.** Downstream limits close in canonical *prefix*
//!   order, so sliced workers publish per-batch partition/kept counts into a
//!   [`SliceBudget`] and stop whole sources (or their whole remaining batch)
//!   the moment the counts published by earlier batches prove the limits
//!   closed. The counts are lower bounds of the final prefix, which is the
//!   sound direction: the stop only ever skips work the merge would discard.
//! * **Per-partition group accounting.** Once the partition limit is
//!   provably closed, a worker needs only its *already-admitted* groups of
//!   the current source to fill before skipping it — a sharper stop than the
//!   serial evaluation's reachability requirement (which conservatively
//!   waits for every reachable group, including ones beyond the partition
//!   limit). On partition-limited γST workloads this is an asymptotic cut,
//!   independent of the thread count (measured by `scaling_lazy_parallel`).
//!
//! Batch boundaries come from [`plan_batches`]: per-source weights (seeded
//! by the engine's closure estimate — out-degree × estimated paths per base
//! element) are packed greedily so each batch carries roughly
//! `total / (threads × BATCHES_PER_THREAD)` weight, capped at the
//! configured `batch_size` sources. Heavy sources therefore land in small
//! (down to singleton) batches and cannot serialise the run; `mini_pool`'s
//! atomic-cursor scheduling steals whole batches.

use crate::Pmr;
use mini_pool::parallel_map;
use pathalg_core::budget::{PathBudget, SliceBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::obs::WorkCounters;
use pathalg_core::ops::group_by::GroupKey;
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_core::slice::{PartitionKey, SliceCollector, SliceSpec, SliceState};
use pathalg_graph::ids::NodeId;
use std::ops::Range;
use std::sync::Arc;

/// Scheduling knobs of a parallel enumeration — the PMR-side mirror of the
/// engine's `ExecutionConfig { threads, batch_size }`.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads (≤ 1 runs the batches inline, in order).
    pub threads: usize,
    /// Maximum number of sources per batch.
    pub batch_size: usize,
}

/// Weighted batch planning aims for this many batches per thread, so the
/// pool can steal work away from a batch that turned out heavy.
pub const BATCHES_PER_THREAD: usize = 4;

/// The outcome of a parallel run: the merged paths plus the work counters
/// the engine's `EvalStats` charge (summed over all batch workers).
#[derive(Debug)]
pub struct ParallelRun {
    /// The merged output, byte-identical to the serial enumeration.
    pub paths: PathSet,
    /// Total arena steps generated across all batches.
    pub steps_generated: usize,
    /// Total level-0 join segments generated across all batches (`None` for
    /// non-join forms).
    pub base_segments: Option<usize>,
    /// Merged work counters: per-batch expansion tallies summed in batch
    /// order, `budget_claimed` read once off the shared [`PathBudget`]
    /// (each batch sees the global tally, so summing would multiply-count),
    /// and for sliced runs the merge-side collector's partition/kept counts
    /// (the serial admission replay, deterministic at every thread count).
    /// On serial-parity schedules — full drains, and sliced specs without
    /// cross-source coupling (no partition limit, source-local group key) —
    /// [`WorkCounters::deterministic_line`] is byte-identical to the serial
    /// [`Pmr::work_counters`] at every thread count; the scheduling
    /// counters (`batches_scheduled`/`batches_merged`) are excluded from
    /// that subset.
    pub work: WorkCounters,
}

/// Splits `n` sources into contiguous batches. Without weights: fixed
/// chunks of `batch_size`. With weights (one per source, in schedule
/// order): greedy packing toward `total_weight / (threads ×
/// BATCHES_PER_THREAD)` per batch, still capped at `batch_size` sources —
/// so uniform schedules degrade to the unweighted plan while a source
/// predicted heavy closes its batch early and parallelises against the
/// rest of the schedule.
pub fn plan_batches(
    n: usize,
    weights: Option<&[u64]>,
    config: &ParallelConfig,
) -> Vec<Range<usize>> {
    let max_sources = config.batch_size.max(1);
    if n == 0 {
        return Vec::new();
    }
    let Some(weights) = weights else {
        return (0..n)
            .step_by(max_sources)
            .map(|s| s..(s + max_sources).min(n))
            .collect();
    };
    assert_eq!(weights.len(), n, "one weight per scheduled source");
    let total: u64 = weights.iter().map(|&w| w.max(1)).sum();
    let target_batches = (config.threads.max(1) * BATCHES_PER_THREAD) as u64;
    let target = (total / target_batches).max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w.max(1);
        if acc >= target || (i + 1 - start) >= max_sources {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Drains the whole enumeration on `config.threads` workers and merges the
/// per-batch output in batch order — content- and order-identical to the
/// serial [`Pmr::enumerate_all`] at every thread count.
///
/// `factory` builds one fresh, unpulled [`Pmr`] per batch (σ-pushdown
/// already applied); `sources` is the prototype's schedule
/// ([`Pmr::sources`]) and `weights`, when given, align with it. `max_paths`
/// is enforced through one shared [`PathBudget`], so the success/failure
/// outcome matches the serial drain (the total step count of a full
/// enumeration is schedule-independent); the batch-order merge reports the
/// error of the earliest failing batch, which contains the earliest failing
/// source — the same error the serial enumeration raises. (As with the
/// frontier engine, when a run violates *two* bounds at once, which variant
/// surfaces first may depend on the schedule.)
pub fn enumerate_all<'g, F>(
    factory: &F,
    sources: &[NodeId],
    weights: Option<&[u64]>,
    config: &ParallelConfig,
    max_paths: Option<usize>,
) -> Result<ParallelRun, AlgebraError>
where
    F: Fn() -> Pmr<'g> + Sync,
{
    let batches = plan_batches(sources.len(), weights, config);
    let budget = Arc::new(PathBudget::new(max_paths));
    let results = parallel_map(config.threads, &batches, |_, range| {
        let mut pmr = factory();
        pmr.set_sources(sources[range.clone()].to_vec());
        pmr.share_budget(budget.clone());
        let mut paths = Vec::new();
        loop {
            match pmr.next_path() {
                Ok(Some(p)) => paths.push(p),
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
        Ok((
            paths,
            pmr.steps_generated(),
            pmr.base_segments(),
            pmr.work_counters(),
        ))
    });

    let mut out = PathSet::new();
    let mut steps = 0usize;
    let mut segments: Option<usize> = None;
    let mut work = WorkCounters {
        batches_scheduled: batches.len() as u64,
        ..WorkCounters::default()
    };
    for result in results {
        let (paths, batch_steps, batch_segments, mut batch_work) = result?;
        steps += batch_steps;
        if let Some(n) = batch_segments {
            *segments.get_or_insert(0) += n;
        }
        // Every batch reads the same shared budget, so its tally is global
        // already — zero it before summing and set it once below.
        batch_work.budget_claimed = 0;
        work.merge(&batch_work);
        work.batches_merged += 1;
        for p in paths {
            out.insert(p);
        }
    }
    work.budget_claimed = budget.count() as u64;
    Ok(ParallelRun {
        paths: out,
        steps_generated: steps,
        base_segments: segments,
        work,
    })
}

/// Evaluates a recognised `π(τA?(γψ(ϕ(…))))` pipeline on `config.threads`
/// workers with the limits of `spec` pushed into every batch —
/// byte-identical to the serial [`Pmr::sliced`] at every thread count.
///
/// Each worker slices its batch locally (per-group caps are source-local
/// under ψ ∈ {S, ST}; the γ∅ global cap bounds each batch's contribution),
/// publishing partition/kept counts into a shared [`SliceBudget`] so later
/// batches stop as soon as the canonical prefix provably closes the limits;
/// the merge then replays partition admission exactly, in batch order,
/// through a [`SliceCollector`] with the caller's spec.
///
/// `max_paths` is enforced through one shared [`PathBudget`]. For specs
/// without cross-source coupling (no partition limit and a non-γ∅ key)
/// every worker expands its sources exactly as the serial evaluation does,
/// so the claim total — and with it the success/failure outcome — matches
/// the serial run exactly. Under a partition limit or a γ∅ cap the serial
/// evaluation stops mid-schedule while workers may expand (and claim for)
/// sources it never reaches; callers wanting exact claim parity for those
/// coupled specs must route `max_paths`-bounded runs to [`Pmr::sliced`] —
/// the engine's strategy chooser does.
/// The same reasoning bounds error parity: expansion errors are reported
/// exactly for uncoupled specs (workers visit what the serial run visits),
/// while for coupled specs a later batch's error is dropped when the merge
/// shows the serial evaluation stops first — an approximation, so callers
/// wanting exact *error* parity for configurations that can fail
/// (unbounded Walk, `max_paths`) must route them serially, as the engine's
/// eligibility rules ([`pathalg_core::slice::SlicePlan::lazy_eligible`] and
/// the strategy chooser) already do.
pub fn sliced<'g, F>(
    factory: &F,
    spec: &SliceSpec,
    sources: &[NodeId],
    weights: Option<&[u64]>,
    config: &ParallelConfig,
    max_paths: Option<usize>,
) -> Result<ParallelRun, AlgebraError>
where
    F: Fn() -> Pmr<'g> + Sync,
{
    let batches = plan_batches(sources.len(), weights, config);
    let source_partitioned = spec.group_key.partitions_by_source();
    let budget = SliceBudget::new(
        batches.len(),
        if source_partitioned {
            spec.max_partitions
        } else {
            None
        },
        if spec.group_key == GroupKey::Empty {
            spec.per_group
        } else {
            None
        },
    );
    let path_budget = Arc::new(PathBudget::new(max_paths));
    let results = parallel_map(config.threads, &batches, |i, range| {
        let mut pmr = factory();
        pmr.set_sources(sources[range.clone()].to_vec());
        pmr.share_budget(path_budget.clone());
        let kept = drive_batch(&mut pmr, spec, &budget, i);
        kept.map(|paths| {
            (
                paths,
                pmr.steps_generated(),
                pmr.base_segments(),
                pmr.work_counters(),
            )
        })
    });

    let mut collector = SliceCollector::new(spec);
    let mut complete = false;
    let mut steps = 0usize;
    let mut segments: Option<usize> = None;
    let mut work = WorkCounters {
        batches_scheduled: batches.len() as u64,
        ..WorkCounters::default()
    };
    for result in results {
        match result {
            Ok((paths, batch_steps, batch_segments, mut batch_work)) => {
                steps += batch_steps;
                if let Some(n) = batch_segments {
                    *segments.get_or_insert(0) += n;
                }
                batch_work.budget_claimed = 0;
                work.merge(&batch_work);
                work.batches_merged += 1;
                if complete {
                    continue;
                }
                for p in paths {
                    if collector.offer(p) == SliceState::Complete {
                        complete = true;
                        break;
                    }
                }
            }
            // A batch error the serial evaluation would never reach (the
            // kept set completed, or the partition limit closed, on an
            // earlier batch) is dropped with the rest of the batch's output.
            Err(e) => {
                let serial_reaches =
                    !complete && (!source_partitioned || collector.accepts_new_partition());
                if serial_reaches {
                    return Err(e);
                }
            }
        }
    }
    work.budget_claimed = path_budget.count() as u64;
    // The merge-side collector replays the serial admission, so its
    // partition/kept counts are the deterministic ones (the per-batch
    // tallies never see the global partition limit).
    work.partitions_opened = collector.partition_count() as u64;
    let paths = collector.finish();
    work.paths_kept = paths.len() as u64;
    Ok(ParallelRun {
        paths,
        steps_generated: steps,
        base_segments: segments,
        work,
    })
}

/// Count-only view of a batch worker's kept groups: the worker never needs
/// the kept *paths* for its stop decisions (the merge re-derives admission
/// from the paths themselves), so it tracks per-group cardinalities in a
/// plain map instead of cloning every kept path into a [`SliceCollector`].
#[derive(Default)]
struct LocalGroups {
    counts: std::collections::HashMap<PartitionKey, usize>,
}

impl LocalGroups {
    fn would_keep(&self, key: &PartitionKey, per_group: Option<usize>) -> bool {
        match self.counts.get(key) {
            Some(&n) => per_group.is_none_or(|k| n < k),
            None => true,
        }
    }

    /// Records a kept path; true if this opened a new group.
    fn keep(&mut self, key: PartitionKey) -> bool {
        let n = self.counts.entry(key).or_insert(0);
        *n += 1;
        *n == 1
    }

    fn is_full(&self, key: &PartitionKey, per_group: Option<usize>) -> bool {
        per_group.is_some_and(|k| self.counts.get(key).copied().unwrap_or(0) >= k)
    }
}

/// One batch worker's sliced enumeration: the serial [`Pmr::sliced`] loop
/// with the partition limit lifted locally (the merge replays admission) and
/// the shared-budget stops of the module docs layered in.
fn drive_batch(
    pmr: &mut Pmr<'_>,
    spec: &SliceSpec,
    budget: &SliceBudget,
    batch: usize,
) -> Result<Vec<Path>, AlgebraError> {
    let per_group = spec.per_group;
    let mut groups = LocalGroups::default();
    let source_partitioned = spec.group_key.partitions_by_source();
    // The partition limit closes monotonically (SliceBudget counters only
    // grow), so once observed closed the prefix scan is never repeated.
    let mut closed = false;
    let partitions_closed = |closed: &mut bool, local_opened: usize| {
        if !*closed {
            *closed = budget.partitions_closed(batch, local_opened);
        }
        *closed
    };
    let mut cur_source: Option<NodeId> = None;
    let mut requirements: Vec<PartitionKey> = Vec::new();
    // Partitions the current source has opened locally — the ones that must
    // fill before the sharp (partition-closed) stop may skip the source.
    let mut src_keys: Vec<PartitionKey> = Vec::new();
    let mut local_opened = 0usize;
    let mut out: Vec<Path> = Vec::new();

    while let Some(emit) = pmr.next_emit()? {
        if cur_source != Some(emit.source) {
            cur_source = Some(emit.source);
            // Demand propagation: limits provably closed by the canonical
            // prefix mean nothing from this or any later source survives
            // the merge.
            if source_partitioned && partitions_closed(&mut closed, local_opened) {
                break;
            }
            if spec.group_key == GroupKey::Empty && budget.kept_complete(batch) {
                break;
            }
            requirements = pmr.requirements_for(emit.source, spec);
            src_keys.clear();
        }
        let key: PartitionKey = (
            spec.group_key.partitions_by_source().then_some(emit.source),
            spec.group_key.partitions_by_target().then_some(emit.last),
        );
        if groups.would_keep(&key, per_group) {
            out.push(pmr.realize(&emit));
            budget.keep_path(batch);
            if groups.keep(key) {
                src_keys.push(key);
                local_opened += 1;
                budget.open_partition(batch);
            }
            // γ∅ has one group: its cap filling completes the batch.
            if spec.group_key == GroupKey::Empty && groups.is_full(&key, per_group) {
                break;
            }
        } else {
            pmr.note_slice_skip();
        }
        if per_group.is_some() {
            let source_done = match spec.group_key {
                GroupKey::Source => groups.is_full(&(Some(emit.source), None), per_group),
                GroupKey::SourceTarget => {
                    if partitions_closed(&mut closed, local_opened) {
                        // Per-partition accounting: no further group of this
                        // source can be admitted, so only the already-opened
                        // ones need to fill — sharper than the serial
                        // evaluation, whose global completion check waits for
                        // every kept group (and whose reachability
                        // requirement waits for every reachable one).
                        src_keys.iter().all(|k| groups.is_full(k, per_group))
                    } else {
                        !requirements.is_empty()
                            && requirements.iter().all(|k| groups.is_full(k, per_group))
                    }
                }
                _ => false,
            };
            if source_done {
                pmr.skip_source();
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
    use pathalg_graph::csr::CsrGraph;
    use pathalg_graph::generator::structured::{complete_graph, cycle_graph};

    fn config(threads: usize, batch_size: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            batch_size,
        }
    }

    #[test]
    fn unweighted_batches_are_fixed_chunks() {
        let plan = plan_batches(7, None, &config(4, 3));
        assert_eq!(plan, vec![0..3, 3..6, 6..7]);
        assert!(plan_batches(0, None, &config(4, 3)).is_empty());
        // batch_size 0 is clamped to singleton batches.
        assert_eq!(plan_batches(2, None, &config(1, 0)), vec![0..1, 1..2]);
    }

    #[test]
    fn weighted_batches_isolate_heavy_sources() {
        // One dominating source closes its batch immediately; the light
        // tail is packed toward the per-batch target.
        let weights = vec![1u64, 1, 1000, 1, 1, 1, 1, 1];
        let plan = plan_batches(8, Some(&weights), &config(2, 8));
        assert!(plan.len() >= 2, "heavy source must not absorb the schedule");
        let heavy = plan.iter().find(|r| r.contains(&2)).unwrap();
        assert_eq!(heavy.end, 3, "the heavy source closes its batch");
        // Coverage: the ranges tile 0..8 contiguously.
        let mut next = 0;
        for r in &plan {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 8);
        // Source caps still apply under weights.
        let uniform = vec![1u64; 10];
        for r in plan_batches(10, Some(&uniform), &config(1, 2)) {
            assert!(r.len() <= 2);
        }
    }

    #[test]
    fn parallel_enumerate_matches_serial_byte_for_byte() {
        let g = complete_graph(5, "k");
        let csr = Arc::new(CsrGraph::with_label(&g, "k"));
        let cfg = RecursionConfig {
            max_length: Some(3),
            max_paths: None,
        };
        let serial = Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg)
            .enumerate_all()
            .unwrap();
        for threads in [1usize, 2, 8] {
            let factory = || Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg);
            let proto = factory();
            let run = enumerate_all(
                &factory,
                &proto.sources(),
                None,
                &config(threads, 2),
                cfg.max_paths,
            )
            .unwrap();
            assert_eq!(run.paths.as_slice(), serial.as_slice(), "t={threads}");
            assert!(run.steps_generated > 0);
        }
    }

    #[test]
    fn shared_budget_reproduces_the_serial_max_paths_outcome() {
        let g = complete_graph(5, "k");
        let csr = Arc::new(CsrGraph::with_label(&g, "k"));
        let cfg = RecursionConfig {
            max_length: Some(3),
            max_paths: Some(10),
        };
        let serial = Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg).enumerate_all();
        assert_eq!(serial, Err(AlgebraError::ResultLimitExceeded { limit: 10 }));
        for threads in [1usize, 4] {
            let factory = || Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg);
            let proto = factory();
            let out = enumerate_all(
                &factory,
                &proto.sources(),
                None,
                &config(threads, 1),
                cfg.max_paths,
            );
            assert!(matches!(
                out,
                Err(AlgebraError::ResultLimitExceeded { limit: 10 })
            ));
        }
    }

    #[test]
    fn unbounded_walk_errors_match_the_serial_error_value() {
        let g = cycle_graph(4, "k");
        let csr = Arc::new(CsrGraph::with_label(&g, "k"));
        let cfg = RecursionConfig::unbounded();
        let serial = Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg).enumerate_all();
        let serial_err = serial.unwrap_err();
        for threads in [1usize, 2, 8] {
            let factory = || Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg);
            let proto = factory();
            let err = enumerate_all(&factory, &proto.sources(), None, &config(threads, 1), None)
                .unwrap_err();
            assert_eq!(err, serial_err, "t={threads}");
        }
    }

    #[test]
    fn parallel_sliced_matches_serial_sliced_byte_for_byte() {
        let g = complete_graph(6, "a");
        let csr = Arc::new(CsrGraph::with_label(&g, "a"));
        let cfg = RecursionConfig {
            max_length: Some(4),
            max_paths: None,
        };
        for spec in [
            // SHORTEST 1 per endpoint pair.
            SliceSpec {
                group_key: GroupKey::SourceTarget,
                per_group: Some(1),
                max_partitions: None,
                ordered_by_length: true,
            },
            // First 2 partitions × 2 paths, source-partitioned.
            SliceSpec {
                group_key: GroupKey::Source,
                per_group: Some(2),
                max_partitions: Some(2),
                ordered_by_length: false,
            },
            // Partition-limited endpoint pairs — the sharp-stop shape.
            SliceSpec {
                group_key: GroupKey::SourceTarget,
                per_group: Some(1),
                max_partitions: Some(3),
                ordered_by_length: false,
            },
            // γ∅ global prefix.
            SliceSpec {
                group_key: GroupKey::Empty,
                per_group: Some(5),
                max_partitions: None,
                ordered_by_length: false,
            },
        ] {
            let expected = Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg)
                .sliced(&spec)
                .unwrap();
            for threads in [1usize, 2, 8] {
                let factory = || Pmr::from_shared_csr(csr.clone(), PathSemantics::Walk, cfg);
                let proto = factory();
                let run = sliced(
                    &factory,
                    &spec,
                    &proto.sources(),
                    None,
                    &config(threads, 2),
                    cfg.max_paths,
                )
                .unwrap();
                assert_eq!(
                    run.paths.as_slice(),
                    expected.as_slice(),
                    "{spec:?} t={threads}"
                );
            }
        }
    }
}
