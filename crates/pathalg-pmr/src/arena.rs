//! The compact step arena: a prefix-sharing forest over expansion steps.
//!
//! A path multiset produced by ϕ has massive prefix redundancy — every
//! admitted path's proper prefixes are themselves admitted paths (trails,
//! acyclic, simple and length-bounded walks are all prefix-closed). The
//! arena exploits this: each discovered path is a single *step* — a parent
//! pointer, the one new edge and its target node — so a multiset of `N`
//! paths costs `O(N)` machine words instead of the `O(N · avg_len)` a
//! materialised [`pathalg_core::pathset::PathSet`] pays. Full
//! [`pathalg_core::path::Path`] values are reconstructed only for the paths
//! a consumer actually pulls.
//!
//! # Layout
//!
//! Steps are stored structure-of-arrays in three parallel `u32`-indexed
//! columns — parent, edge, target — at 12 bytes per step, down from the 16
//! bytes of the former `{parent, len, edge, target}` array-of-structs. The
//! length column is gone entirely: expansion is level-synchronous, so every
//! caller already knows the length of the chains it processes and threads it
//! alongside the step id. The root sentinel is an explicit 4-byte niche:
//! parents are `Option<NonZeroU32>` holding `index + 1`, so `None` (the
//! all-zero bit pattern) means "extends the bare source node" and the column
//! stays at 4 bytes per step.
//!
//! The split matters for the admission walks, which are the hot loops of
//! Trail/Acyclic/Simple expansion: [`StepArena::chain_contains_edge`]
//! touches only the parent and edge columns (8 bytes per visited step) and
//! [`StepArena::chain_targets_contain`] only parent and target — the
//! irrelevant columns never enter the cache.

use pathalg_core::path::Path;
use pathalg_graph::ids::{EdgeId, NodeId};
use std::num::NonZeroU32;

/// A growable structure-of-arrays arena of expansion steps (see the module
/// docs for the layout).
#[derive(Clone, Debug, Default)]
pub(crate) struct StepArena {
    /// `index + 1` of the parent step; `None` is the root sentinel ("extends
    /// the bare source node").
    parents: Vec<Option<NonZeroU32>>,
    /// The edge appended by each step.
    edges: Vec<EdgeId>,
    /// `Last(p)` of the path each step completes.
    targets: Vec<NodeId>,
}

impl StepArena {
    /// Appends a step and returns its index.
    #[inline]
    pub fn push(&mut self, parent: Option<u32>, edge: EdgeId, target: NodeId) -> u32 {
        let id = self.parents.len() as u32;
        self.parents.push(
            parent.map(|p| NonZeroU32::new(p + 1).expect("arena indexes stay below u32::MAX")),
        );
        self.edges.push(edge);
        self.targets.push(target);
        id
    }

    /// The parent step of `id`, or `None` for a root step (niche-decode
    /// check; the hot chain walks read the column directly).
    #[cfg(test)]
    pub fn parent(&self, id: u32) -> Option<u32> {
        self.parents[id as usize].map(|p| p.get() - 1)
    }

    /// `Last(p)` of the chain ending at `id`.
    #[inline]
    pub fn target(&self, id: u32) -> NodeId {
        self.targets[id as usize]
    }

    /// Number of steps allocated.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Reserves room for at least `additional` more steps, so a drain whose
    /// step count is known up front performs no mid-flight reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.parents.reserve(additional);
        self.edges.reserve(additional);
        self.targets.reserve(additional);
    }

    /// Bytes currently backing the arena (capacities, not lengths — this is
    /// the allocation footprint, surfaced as `arena_bytes_peak`). The arena
    /// only grows, so the current footprint is also the peak.
    pub fn bytes(&self) -> usize {
        self.parents.capacity() * size_of::<Option<NonZeroU32>>()
            + self.edges.capacity() * size_of::<EdgeId>()
            + self.targets.capacity() * size_of::<NodeId>()
    }

    /// True if the chain ending at `id` contains `edge`. Touches only the
    /// parent and edge columns.
    pub fn chain_contains_edge(&self, id: u32, edge: EdgeId) -> bool {
        let (parents, edges) = (self.parents.as_slice(), self.edges.as_slice());
        let mut cur = id as usize;
        loop {
            if edges[cur] == edge {
                return true;
            }
            match parents[cur] {
                Some(p) => cur = (p.get() - 1) as usize,
                None => return false,
            }
        }
    }

    /// True if any step target on the chain ending at `id` equals `node`
    /// (the source node itself is *not* part of the chain targets). Touches
    /// only the parent and target columns.
    pub fn chain_targets_contain(&self, id: u32, node: NodeId) -> bool {
        let (parents, targets) = (self.parents.as_slice(), self.targets.as_slice());
        let mut cur = id as usize;
        loop {
            if targets[cur] == node {
                return true;
            }
            match parents[cur] {
                Some(p) => cur = (p.get() - 1) as usize,
                None => return false,
            }
        }
    }

    /// Reconstructs the full path for the chain of `len` edges ending at
    /// `id`, starting from `source`. This is the only place paths are
    /// materialised; `len` is threaded in by the caller (the arena stores no
    /// length column).
    pub fn path_of(&self, id: u32, source: NodeId, len: usize) -> Path {
        let mut nodes = vec![NodeId(0); len + 1];
        let mut edges = vec![EdgeId(0); len];
        nodes[0] = source;
        let (parents, step_edges, targets) = (
            self.parents.as_slice(),
            self.edges.as_slice(),
            self.targets.as_slice(),
        );
        let mut cur = id as usize;
        let mut i = len;
        loop {
            nodes[i] = targets[cur];
            edges[i - 1] = step_edges[cur];
            match parents[cur] {
                Some(p) => {
                    cur = (p.get() - 1) as usize;
                    i -= 1;
                }
                None => break,
            }
        }
        debug_assert_eq!(i, 1, "chain length matches the threaded len");
        Path::from_sequence(nodes, edges, None).expect("arena chains are well-formed paths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_reconstruct_their_paths() {
        let mut arena = StepArena::default();
        // source n0: n0 -e0-> n1 -e1-> n2, and a sibling n0 -e2-> n3.
        let a = arena.push(None, EdgeId(0), NodeId(1));
        let b = arena.push(Some(a), EdgeId(1), NodeId(2));
        let c = arena.push(None, EdgeId(2), NodeId(3));
        assert_eq!(arena.len(), 3);

        let p = arena.path_of(b, NodeId(0), 2);
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.edges(), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(arena.parent(b), Some(a));
        assert_eq!(arena.parent(a), None, "root steps use the niche sentinel");
        assert_eq!(arena.target(b), NodeId(2));

        let p = arena.path_of(c, NodeId(0), 1);
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(3)]);

        assert!(arena.chain_contains_edge(b, EdgeId(0)));
        assert!(arena.chain_contains_edge(b, EdgeId(1)));
        assert!(!arena.chain_contains_edge(b, EdgeId(2)));
        assert!(arena.chain_targets_contain(b, NodeId(1)));
        assert!(arena.chain_targets_contain(b, NodeId(2)));
        assert!(!arena.chain_targets_contain(b, NodeId(0)));
    }

    #[test]
    fn parent_column_has_a_four_byte_niche() {
        assert_eq!(size_of::<Option<NonZeroU32>>(), 4);
    }

    #[test]
    fn reserve_pins_the_allocation_for_a_known_drain() {
        let mut arena = StepArena::default();
        arena.reserve(100);
        let before = arena.bytes();
        assert!(before >= 100 * 12, "12 bytes per reserved step");
        for i in 0..100u32 {
            let parent = (i > 0).then(|| i - 1);
            arena.push(parent, EdgeId(i), NodeId(i));
        }
        assert_eq!(arena.bytes(), before, "no reallocation within the reserve");
    }
}
