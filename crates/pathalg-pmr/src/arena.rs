//! The compact step arena: a prefix-sharing forest over expansion steps.
//!
//! A path multiset produced by ϕ has massive prefix redundancy — every
//! admitted path's proper prefixes are themselves admitted paths (trails,
//! acyclic, simple and length-bounded walks are all prefix-closed). The
//! arena exploits this: each discovered path is a single [`Step`] — a parent
//! pointer, the one new edge, its target node and the resulting length — so a
//! multiset of `N` paths costs `O(N)` machine words instead of the
//! `O(N · avg_len)` a materialised [`pathalg_core::pathset::PathSet`] pays.
//! Full [`pathalg_core::path::Path`] values are reconstructed only for the
//! paths a consumer actually pulls.

use pathalg_core::path::Path;
use pathalg_graph::ids::{EdgeId, NodeId};

/// Sentinel parent index: the step extends the bare source node.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// One expansion step: the path that reaches `target` by extending the parent
/// path (or the source node, for `NO_PARENT`) along `edge`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Step {
    /// Arena index of the parent step, or [`NO_PARENT`].
    pub parent: u32,
    /// Number of edges on the path this step completes.
    pub len: u32,
    /// The edge appended by this step.
    pub edge: EdgeId,
    /// `Last(p)` of the completed path.
    pub target: NodeId,
}

/// A growable arena of [`Step`]s.
#[derive(Clone, Debug, Default)]
pub(crate) struct StepArena {
    steps: Vec<Step>,
}

impl StepArena {
    /// Appends a step and returns its index.
    pub fn push(&mut self, parent: u32, edge: EdgeId, target: NodeId, len: u32) -> u32 {
        self.steps.push(Step {
            parent,
            len,
            edge,
            target,
        });
        (self.steps.len() - 1) as u32
    }

    /// The step at `id`.
    #[inline]
    pub fn step(&self, id: u32) -> &Step {
        &self.steps[id as usize]
    }

    /// Number of steps allocated.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the chain ending at `id` contains `edge`.
    pub fn chain_contains_edge(&self, mut id: u32, edge: EdgeId) -> bool {
        loop {
            let step = self.step(id);
            if step.edge == edge {
                return true;
            }
            if step.parent == NO_PARENT {
                return false;
            }
            id = step.parent;
        }
    }

    /// True if any step target on the chain ending at `id` equals `node`
    /// (the source node itself is *not* part of the chain targets).
    pub fn chain_targets_contain(&self, mut id: u32, node: NodeId) -> bool {
        loop {
            let step = self.step(id);
            if step.target == node {
                return true;
            }
            if step.parent == NO_PARENT {
                return false;
            }
            id = step.parent;
        }
    }

    /// Reconstructs the full path for the chain ending at `id`, starting from
    /// `source`. This is the only place paths are materialised.
    pub fn path_of(&self, mut id: u32, source: NodeId) -> Path {
        let len = self.step(id).len as usize;
        let mut nodes = vec![NodeId(0); len + 1];
        let mut edges = vec![EdgeId(0); len];
        nodes[0] = source;
        let mut i = len;
        loop {
            let step = self.step(id);
            nodes[i] = step.target;
            edges[i - 1] = step.edge;
            if step.parent == NO_PARENT {
                break;
            }
            id = step.parent;
            i -= 1;
        }
        Path::from_sequence(nodes, edges, None).expect("arena chains are well-formed paths")
    }

    /// The `(First, Last, Len)` key triple of the chain ending at `id` —
    /// available in O(1), without reconstructing the path.
    pub fn triple_of(&self, id: u32, source: NodeId) -> (NodeId, NodeId, usize) {
        let step = self.step(id);
        (source, step.target, step.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_reconstruct_their_paths() {
        let mut arena = StepArena::default();
        // source n0: n0 -e0-> n1 -e1-> n2, and a sibling n0 -e2-> n3.
        let a = arena.push(NO_PARENT, EdgeId(0), NodeId(1), 1);
        let b = arena.push(a, EdgeId(1), NodeId(2), 2);
        let c = arena.push(NO_PARENT, EdgeId(2), NodeId(3), 1);
        assert_eq!(arena.len(), 3);

        let p = arena.path_of(b, NodeId(0));
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.edges(), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(arena.triple_of(b, NodeId(0)), (NodeId(0), NodeId(2), 2));

        let p = arena.path_of(c, NodeId(0));
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(3)]);

        assert!(arena.chain_contains_edge(b, EdgeId(0)));
        assert!(arena.chain_contains_edge(b, EdgeId(1)));
        assert!(!arena.chain_contains_edge(b, EdgeId(2)));
        assert!(arena.chain_targets_contain(b, NodeId(1)));
        assert!(arena.chain_targets_contain(b, NodeId(2)));
        assert!(!arena.chain_targets_contain(b, NodeId(0)));
    }
}
