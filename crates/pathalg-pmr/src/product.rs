//! PMR construction from the product automaton `G × A` of an RPQ.
//!
//! Mirrors `pathalg_rpq::automaton_eval::AutomatonEvaluator::expand_source`
//! — the same product-BFS discovery order, co-accepting pruning, duplicate
//! elimination and Shortest per-target filter — but records the search tree
//! as compact arena steps and reconstructs only the paths a consumer
//! pulls. Laziness is per *source*: one source's product BFS runs eagerly
//! when first touched (the automaton can accept the same path through
//! different runs, so duplicate elimination needs the source's accepted set),
//! while sources beyond the consumer's demand are never expanded at all.
//!
//! The BFS queue, the Shortest distance map and the accepted-item buffer are
//! owned by the expansion and recycled across sources; the per-source dedup
//! `PathSet` is the one inherently materialising piece (the automaton can
//! accept one path through different runs) and stays source-scoped.

use crate::arena::StepArena;
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::fasthash::FastMap;
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_graph::graph::PropertyGraph;
use pathalg_graph::ids::NodeId;
use pathalg_rpq::nfa::Nfa;
use pathalg_rpq::regex::LabelRegex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One emitted element of a product expansion: the empty path at the current
/// source (for nullable regexes) or an arena chain with its edge count.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ProductItem {
    /// The zero-length path at the source node.
    Empty,
    /// The chain ending at this arena step, with its path length.
    Step(u32, u32),
}

/// A product-BFS queue entry: the chain so far (with its length), the
/// automaton state, and — only under unbounded Walk — the product states on
/// the partial path (a repeated product state that can still accept proves
/// the answer is infinite).
type Entry = (Option<u32>, u32, usize, Vec<(NodeId, usize)>);

/// The per-source-lazy product expander (see the module docs).
pub(crate) struct ProductExpansion<'g> {
    graph: &'g PropertyGraph,
    nfa: Nfa,
    accepts_empty: bool,
    co_accepting: Vec<bool>,
    semantics: PathSemantics,
    config: RecursionConfig,
    walk_unbounded: bool,
    sources: Vec<NodeId>,
    next_source: usize,
    pub(crate) arena: StepArena,
    pending: VecDeque<ProductItem>,
    cur_source: NodeId,
    /// The `max_paths` accounting — owned by default, shared across batch
    /// workers under parallel enumeration ([`crate::parallel`]). Every
    /// accepted path is claimed, mirroring the serial automaton evaluator.
    budget: Arc<PathBudget>,
    /// Cooperative cancellation, checked periodically inside the eager
    /// per-source product BFS (the source expansion is the long-running
    /// unit of work here, unlike the level-ordered CSR/join expanders).
    cancel: Option<Arc<CancelToken>>,
    /// Recycled per-source scratch: the BFS queue, the Shortest per-target
    /// distance map, and the accepted-item buffer.
    queue: VecDeque<Entry>,
    best: FastMap<NodeId, usize>,
    accepted: Vec<ProductItem>,
    /// Times a hoisted scratch buffer was reused instead of allocated.
    scratch_reuse: u64,
}

impl<'g> ProductExpansion<'g> {
    pub fn new(
        graph: &'g PropertyGraph,
        regex: &LabelRegex,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Self {
        let nfa = Nfa::from_regex(regex);
        let co_accepting = co_accepting_states(&nfa);
        Self {
            graph,
            accepts_empty: regex.is_nullable(),
            co_accepting,
            nfa,
            semantics,
            config,
            walk_unbounded: semantics == PathSemantics::Walk && config.max_length.is_none(),
            sources: graph.nodes().collect(),
            next_source: 0,
            arena: StepArena::default(),
            pending: VecDeque::new(),
            cur_source: NodeId(0),
            budget: Arc::new(PathBudget::new(config.max_paths)),
            cancel: None,
            queue: VecDeque::new(),
            best: FastMap::default(),
            accepted: Vec::new(),
            scratch_reuse: 0,
        }
    }

    /// The next emitted item, with its source, in canonical order.
    pub fn next_item(&mut self) -> Result<Option<(ProductItem, NodeId)>, AlgebraError> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Ok(Some((item, self.cur_source)));
            }
            let Some(&s) = self.sources.get(self.next_source) else {
                return Ok(None);
            };
            self.next_source += 1;
            self.cur_source = s;
            self.expand_source(s)?;
        }
    }

    /// Drops the rest of the current source's queued output.
    pub fn skip_source(&mut self) {
        self.pending.clear();
    }

    /// Restricts expansion to sources marked in `keep` (σ-first pushdown).
    /// Must be applied before the first pull.
    pub fn restrict_sources(&mut self, keep: &[bool]) {
        self.sources.retain(|v| keep.get(v.index()) == Some(&true));
    }

    /// The remaining source schedule (the full schedule before any pull).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources[self.next_source..]
    }

    /// Replaces the source schedule (already filtered, in graph node order).
    /// Must be applied before the first pull.
    pub fn set_sources(&mut self, sources: Vec<NodeId>) {
        self.sources = sources;
        self.next_source = 0;
    }

    /// Replaces the owned `max_paths` budget with a shared one, so several
    /// batch-restricted expansions enforce one global limit. Must be applied
    /// before the first pull.
    pub fn share_budget(&mut self, budget: Arc<PathBudget>) {
        self.budget = budget;
    }

    /// Installs a shared cancellation token, checked periodically during
    /// source expansion. May be applied at any time.
    pub fn share_cancel(&mut self, cancel: Arc<CancelToken>) {
        self.cancel = Some(cancel);
    }

    /// Number of arena steps allocated so far.
    pub fn steps_generated(&self) -> usize {
        self.arena.len()
    }

    /// Bytes currently backing the step arena (see `arena_bytes_peak`).
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Scratch reuse events (see `scratch_reuse_count`).
    pub fn scratch_reuse(&self) -> u64 {
        self.scratch_reuse
    }

    /// Paths recorded against the (possibly shared) budget so far.
    pub(crate) fn budget_count(&self) -> usize {
        self.budget.count()
    }

    /// Reconstructs the path of an emitted item.
    pub fn realize(&self, item: ProductItem, source: NodeId) -> Path {
        match item {
            ProductItem::Empty => Path::node(source),
            ProductItem::Step(id, len) => self.arena.path_of(id, source, len as usize),
        }
    }

    /// The `(First, Last, Len)` triple of an emitted item.
    pub fn triple(&self, item: ProductItem, source: NodeId) -> (NodeId, NodeId, usize) {
        match item {
            ProductItem::Empty => (source, source, 0),
            ProductItem::Step(id, len) => (source, self.arena.target(id), len as usize),
        }
    }

    fn claim(&mut self) -> Result<(), AlgebraError> {
        self.budget.claim(1)
    }

    /// The product BFS of one source, mirroring
    /// `AutomatonEvaluator::expand_source` step for step.
    fn expand_source(&mut self, s: NodeId) -> Result<(), AlgebraError> {
        // Dedup set: the same path can be accepted through different
        // automaton runs; scoped to this source, dropped afterwards.
        let mut result = PathSet::new();
        let mut best = std::mem::take(&mut self.best);
        let mut accepted = std::mem::take(&mut self.accepted);
        let mut queue = std::mem::take(&mut self.queue);
        if best.capacity() + accepted.capacity() + queue.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        best.clear();
        accepted.clear();
        queue.clear();
        // Copy out the graph reference: its borrow is of the external graph,
        // not of `self`, so the adjacency slices can be walked while the
        // arena is extended — no per-pop edge-list copy.
        let graph = self.graph;

        if self.accepts_empty && result.insert(Path::node(s)) {
            self.claim()?;
            accepted.push(ProductItem::Empty);
        }

        let start = self.nfa.start();
        let initial_seen = if self.walk_unbounded {
            vec![(s, start)]
        } else {
            Vec::new()
        };
        queue.push_back((None, 0, start, initial_seen));

        let mut pops: usize = 0;
        while let Some((chain, cur_len, state, seen)) = queue.pop_front() {
            // Amortise the deadline's `Instant::now()` over many pops.
            if pops & 127 == 0 {
                if let Some(token) = &self.cancel {
                    token.check()?;
                }
            }
            pops += 1;
            let here = match chain {
                Some(id) => self.arena.target(id),
                None => s,
            };
            for &edge in graph.outgoing(here) {
                let label = graph.label(edge);
                for next_state in self.nfa.step(state, label) {
                    if !self.co_accepting[next_state] {
                        continue;
                    }
                    let t = graph.target(edge);
                    let new_len = cur_len + 1;
                    if let Some(max) = self.config.max_length {
                        if new_len as usize > max {
                            continue;
                        }
                    }
                    let admissible = match self.semantics {
                        PathSemantics::Walk => true,
                        PathSemantics::Trail => {
                            chain.is_none_or(|id| !self.arena.chain_contains_edge(id, edge))
                        }
                        PathSemantics::Acyclic => {
                            t != s
                                && chain.is_none_or(|id| !self.arena.chain_targets_contain(id, t))
                        }
                        PathSemantics::Simple | PathSemantics::Shortest => {
                            let closed = cur_len > 0 && here == s;
                            !closed
                                && (t == s
                                    || chain
                                        .is_none_or(|id| !self.arena.chain_targets_contain(id, t)))
                        }
                    };
                    if !admissible {
                        continue;
                    }
                    let product_state = (t, next_state);
                    if self.walk_unbounded && seen.contains(&product_state) {
                        return Err(AlgebraError::RecursionLimitExceeded {
                            bound: 0,
                            paths_so_far: result.len(),
                        });
                    }
                    let id = self.arena.push(chain, edge, t);
                    if self.nfa.is_accepting(next_state) {
                        if self.semantics == PathSemantics::Shortest {
                            let entry = best.entry(t).or_insert(new_len as usize);
                            *entry = (*entry).min(new_len as usize);
                        }
                        if result.insert(self.arena.path_of(id, s, new_len as usize)) {
                            self.claim()?;
                            accepted.push(ProductItem::Step(id, new_len));
                        }
                    }
                    let next_seen = if self.walk_unbounded {
                        let mut v = seen.clone();
                        v.push(product_state);
                        v
                    } else {
                        Vec::new()
                    };
                    queue.push_back((Some(id), new_len, next_state, next_seen));
                }
            }
        }

        for &item in &accepted {
            let keep = match (self.semantics, item) {
                (PathSemantics::Shortest, ProductItem::Step(id, len)) => {
                    best.get(&self.arena.target(id)) == Some(&(len as usize))
                }
                // Zero-length matches are kept unconditionally under
                // Shortest, mirroring the Kleene-star translation.
                _ => true,
            };
            if keep {
                self.pending.push_back(item);
            }
        }
        self.best = best;
        self.accepted = accepted;
        self.queue = queue;
        Ok(())
    }
}

/// For every NFA state, whether an accepting state is reachable (same
/// computation as the serial automaton evaluator's dead-branch pruning).
fn co_accepting_states(nfa: &Nfa) -> Vec<bool> {
    let n = nfa.state_count();
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in 0..n {
        for &(_, t) in nfa.transitions_from(s) {
            reverse[t].push(s);
        }
    }
    let mut co = vec![false; n];
    let mut queue: VecDeque<usize> = (0..n).filter(|&s| nfa.is_accepting(s)).collect();
    for &s in &queue {
        co[s] = true;
    }
    while let Some(s) = queue.pop_front() {
        for &p in &reverse[s] {
            if !co[p] {
                co[p] = true;
                queue.push_back(p);
            }
        }
    }
    co
}
