//! # pathalg-pmr — compact path-multiset representations with lazy top-k
//! enumeration
//!
//! Every materialised evaluation of the recursive operator ϕ pays for the
//! *full* path multiset even when the query keeps almost none of it: on
//! cyclic graphs under `WALK`/`TRAIL` the multiset is exponential in the
//! length bound while a `π(*,*,k)`-sliced answer is tiny. Following the
//! PathFinder line of work, this crate represents the multiset *implicitly*
//! as an annotated product graph — graph node × recursion/automaton state —
//! and enumerates paths from it **on demand, in the engine's canonical
//! order**:
//!
//! * [`Pmr::from_label_scan`] / [`Pmr::from_csr`] — the `ϕ(σℓ(Edges(G)))`
//!   form: lazy per-source, level-ordered frontier expansion over a
//!   label-restricted CSR snapshot, byte-order-identical to the engine's
//!   materialised `phi_frontier_csr`.
//! * [`Pmr::from_regex`] — the product-automaton form `G × A`, mirroring the
//!   serial `AutomatonEvaluator` discovery order (lazy across sources).
//! * [`Pmr::next_batch`] / [`Pmr::top_k`] / [`Pmr::enumerate_all`] — pull as
//!   much as you need; `top_k(k)` obeys the law
//!   `top_k(k) == enumerate().take(k)` while expanding only what those `k`
//!   paths require.
//! * [`Pmr::group_counts`] — γψ group cardinalities over
//!   `(First(p), Last(p), Len(p))` straight from the arena, without
//!   reconstructing a single path.
//! * [`Pmr::sliced`] — evaluates a recognised `π(τA?(γψ(ϕ(…))))` pipeline
//!   ([`pathalg_core::slice`]) with per-group limits pushed into the
//!   enumeration and a node-level reachability analysis that stops each
//!   source as soon as its contribution to every kept group is complete.
//!
//! Paths are stored as parent-pointer arena steps — `O(1)`
//! words per path instead of `O(len)`. In the CSR forms a
//! discovered-but-skipped path is never materialised at all; the product
//! form additionally materialises each source's *accepted* paths while that
//! source is current, for duplicate elimination (see [`Pmr::from_regex`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod csr;
mod join;
pub mod parallel;
mod product;

use crate::csr::{CsrExpansion, ReachInfo};
use crate::join::JoinExpansion;
use crate::product::{ProductExpansion, ProductItem};
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::obs::WorkCounters;
use pathalg_core::ops::group_by::{group_counts_from_triples, GroupCounts, GroupKey};
use pathalg_core::ops::recursive::{PathSemantics, RecursionConfig};
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_core::pathset_repr::LazyPathStream;
use pathalg_core::slice::{PartitionKey, SliceCollector, SliceSpec, SliceState};
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::graph::PropertyGraph;
use pathalg_graph::ids::NodeId;
use pathalg_rpq::regex::LabelRegex;
use std::sync::Arc;

/// A compact, lazily enumerable path-multiset representation (see the crate
/// docs). The lifetime is that of the graph the product form borrows; the
/// CSR forms own their snapshot and are `'static`.
pub struct Pmr<'g> {
    inner: Inner<'g>,
    /// Per-node target mask of the endpoint-σ pushdown: when set, paths whose
    /// last node is unmarked are skipped at emission (never reconstructed)
    /// while the expansion still runs *through* them.
    target_mask: Option<Vec<bool>>,
    /// Deterministic per-enumeration event tallies ([`Pmr::work_counters`]).
    counts: LocalCounts,
}

/// The event tallies a `Pmr` tracks itself; everything else in
/// [`WorkCounters`] (arena steps, base segments, budget claims) is read off
/// the expansion state when [`Pmr::work_counters`] assembles the totals.
#[derive(Clone, Copy, Debug, Default)]
struct LocalCounts {
    emitted: u64,
    skipped: u64,
    abandoned: u64,
    partitions: u64,
    kept: u64,
}

enum Inner<'g> {
    Csr(Box<CsrExpansion>),
    Join(Box<JoinExpansion>),
    Product(Box<ProductExpansion<'g>>),
}

/// Endpoint restrictions pushed down from `σ_first`/`σ_last` predicates
/// ([`pathalg_core::slice::SlicePlan::filter`]): per-node keep masks for the
/// first and last node of every enumerated path. A `None` side is
/// unrestricted.
#[derive(Clone, Debug, Default)]
pub struct EndpointFilter {
    /// Nodes admissible as `First(p)` — unmarked sources are never expanded.
    pub sources: Option<Vec<bool>>,
    /// Nodes admissible as `Last(p)` — paths ending elsewhere are skipped
    /// without reconstruction.
    pub targets: Option<Vec<bool>>,
}

/// One emitted element, before path reconstruction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Emit {
    pub(crate) source: NodeId,
    pub(crate) last: NodeId,
    pub(crate) len: usize,
    token: Token,
}

#[derive(Clone, Copy, Debug)]
enum Token {
    /// An arena step of the CSR or join expansion, with its path length
    /// (lengths are threaded, not stored per step — see [`arena`]).
    Step(u32, u32),
    Product(ProductItem),
}

impl Pmr<'static> {
    /// PMR of `ϕ_semantics(σ_{label=ℓ}(Edges(G)))`: frontier expansion over a
    /// label-restricted CSR snapshot of `graph`, base never materialised.
    pub fn from_label_scan(
        graph: &PropertyGraph,
        label: &str,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Self::from_csr(CsrGraph::with_label(graph, label), semantics, config)
    }

    /// PMR of `ϕ_semantics` over the edge set of an arbitrary CSR snapshot
    /// (every edge as a length-1 base path).
    pub fn from_csr(
        csr: CsrGraph,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Self::from_shared_csr(Arc::new(csr), semantics, config)
    }

    /// [`Pmr::from_csr`] over a *shared* snapshot: parallel batch workers
    /// ([`parallel`]) build one restricted expansion each over the same
    /// `Arc`ed CSR instead of cloning it per batch.
    pub fn from_shared_csr(
        csr: Arc<CsrGraph>,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Pmr {
            inner: Inner::Csr(Box::new(CsrExpansion::new(csr, semantics, config))),
            target_mask: None,
            counts: LocalCounts::default(),
        }
    }

    /// PMR of `ϕ_semantics(σℓ1(E) ⋈ … ⋈ σℓk(E))` — the lazy endpoint-keyed
    /// join of the per-label scans (see the `join` module): neither join side,
    /// the join result, nor the closure is ever materialised, and the
    /// emission order is byte-identical to materialising the join and running
    /// the engine's frontier expansion.
    pub fn from_label_chain(
        graph: &PropertyGraph,
        labels: &[&str],
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Self::from_join(
            labels
                .iter()
                .map(|l| CsrGraph::with_label(graph, l))
                .collect(),
            semantics,
            config,
        )
    }

    /// PMR of `ϕ_semantics` over the concatenation of per-hop CSR snapshots
    /// (every base path walks one edge of each hop in order).
    pub fn from_join(
        hops: Vec<CsrGraph>,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Self::from_shared_join(hops.into(), semantics, config)
    }

    /// [`Pmr::from_join`] over *shared* per-hop snapshots: parallel batch
    /// workers ([`parallel`]) build one restricted expansion each over the
    /// same `Arc`ed hop list instead of cloning the snapshots per batch.
    pub fn from_shared_join(
        hops: Arc<[CsrGraph]>,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'static> {
        Pmr {
            inner: Inner::Join(Box::new(JoinExpansion::new(hops, semantics, config))),
            target_mask: None,
            counts: LocalCounts::default(),
        }
    }
}

impl<'g> Pmr<'g> {
    /// PMR of a regular path query: the product `G × A` of the graph and the
    /// expression's NFA, enumerated under the given path semantics.
    pub fn from_regex(
        graph: &'g PropertyGraph,
        regex: &LabelRegex,
        semantics: PathSemantics,
        config: RecursionConfig,
    ) -> Pmr<'g> {
        Pmr {
            inner: Inner::Product(Box::new(ProductExpansion::new(
                graph, regex, semantics, config,
            ))),
            target_mask: None,
            counts: LocalCounts::default(),
        }
    }

    /// Pushes an endpoint-σ down into the enumeration: unmarked sources are
    /// dropped from the expansion schedule entirely, and paths ending at an
    /// unmarked target are skipped at emission without reconstruction. Must
    /// be applied before the first pull; the resulting stream is exactly the
    /// unfiltered stream with the σ applied — same paths, same order.
    pub fn restrict_endpoints(&mut self, filter: EndpointFilter) {
        if let Some(keep) = &filter.sources {
            match &mut self.inner {
                Inner::Csr(e) => e.restrict_sources(keep),
                Inner::Join(e) => e.restrict_sources(keep),
                Inner::Product(e) => e.restrict_sources(keep),
            }
        }
        self.target_mask = filter.targets;
    }

    /// The source schedule still ahead of the enumeration (the full
    /// schedule before any pull, after any [`Pmr::restrict_endpoints`]
    /// source restriction) — what a parallel run partitions into batches.
    pub fn sources(&self) -> Vec<NodeId> {
        match &self.inner {
            Inner::Csr(e) => e.sources().to_vec(),
            Inner::Join(e) => e.sources().to_vec(),
            Inner::Product(e) => e.sources().to_vec(),
        }
    }

    /// Replaces the source schedule with an explicit (already filtered,
    /// canonically ordered) list — how [`parallel`] restricts one batch
    /// worker to its slice of the schedule. Must precede the first pull.
    pub(crate) fn set_sources(&mut self, sources: Vec<NodeId>) {
        match &mut self.inner {
            Inner::Csr(e) => e.set_sources(sources),
            Inner::Join(e) => e.set_sources(sources),
            Inner::Product(e) => e.set_sources(sources),
        }
    }

    /// Shares one `max_paths` budget across several batch-restricted
    /// expansions of the same logical enumeration. Must precede the first
    /// pull.
    pub(crate) fn share_budget(&mut self, budget: Arc<PathBudget>) {
        match &mut self.inner {
            Inner::Csr(e) => e.share_budget(budget),
            Inner::Join(e) => e.share_budget(budget),
            Inner::Product(e) => e.share_budget(budget),
        }
    }

    /// Installs a shared cancellation token on the underlying expansion:
    /// every subsequent pull polls the token at its level (or BFS-chunk)
    /// boundary and aborts with [`AlgebraError::Cancelled`] /
    /// [`AlgebraError::DeadlineExceeded`] once it fires. Under parallel
    /// enumeration the same token is installed in every batch worker's
    /// expansion (via the factory closure), so one token stops all workers
    /// within one batch.
    pub fn share_cancel(&mut self, cancel: Arc<CancelToken>) {
        match &mut self.inner {
            Inner::Csr(e) => e.share_cancel(cancel),
            Inner::Join(e) => e.share_cancel(cancel),
            Inner::Product(e) => e.share_cancel(cancel),
        }
    }

    fn target_admits(&self, last: NodeId) -> bool {
        self.target_mask
            .as_ref()
            .is_none_or(|mask| mask.get(last.index()) == Some(&true))
    }

    pub(crate) fn next_emit(&mut self) -> Result<Option<Emit>, AlgebraError> {
        loop {
            let emit = match &mut self.inner {
                Inner::Csr(e) => e.next_id()?.map(|(id, source, len)| Emit {
                    source,
                    last: e.arena.target(id),
                    len: len as usize,
                    token: Token::Step(id, len),
                }),
                Inner::Join(e) => e.next_id()?.map(|(id, source, len)| Emit {
                    source,
                    last: e.arena.target(id),
                    len: len as usize,
                    token: Token::Step(id, len),
                }),
                Inner::Product(e) => e.next_item()?.map(|(item, source)| {
                    let (_, last, len) = e.triple(item, source);
                    Emit {
                        source,
                        last,
                        len,
                        token: Token::Product(item),
                    }
                }),
            };
            match emit {
                Some(e) if !self.target_admits(e.last) => {
                    self.counts.skipped += 1;
                    continue;
                }
                other => {
                    if other.is_some() {
                        self.counts.emitted += 1;
                    }
                    return Ok(other);
                }
            }
        }
    }

    pub(crate) fn realize(&self, emit: &Emit) -> Path {
        match (&self.inner, emit.token) {
            (Inner::Csr(e), Token::Step(id, len)) => e.arena.path_of(id, emit.source, len as usize),
            (Inner::Join(e), Token::Step(id, len)) => {
                e.arena.path_of(id, emit.source, len as usize)
            }
            (Inner::Product(e), Token::Product(item)) => e.realize(item, emit.source),
            _ => unreachable!("emit token matches the inner representation"),
        }
    }

    /// Counts an emitted path a sliced consumer discarded (would-not-keep),
    /// so batch workers ([`parallel::sliced`]) tally skips exactly as the
    /// serial [`Pmr::sliced`] loop does.
    pub(crate) fn note_slice_skip(&mut self) {
        self.counts.skipped += 1;
    }

    pub(crate) fn skip_source(&mut self) {
        self.counts.abandoned += 1;
        match &mut self.inner {
            Inner::Csr(e) => e.skip_source(),
            Inner::Join(e) => e.skip_source(),
            Inner::Product(e) => e.skip_source(),
        }
    }

    /// Number of arena steps allocated so far — the work actually performed.
    /// A sliced or top-k consumer leaves this far below the multiset size.
    pub fn steps_generated(&self) -> usize {
        match &self.inner {
            Inner::Csr(e) => e.steps_generated(),
            Inner::Join(e) => e.steps_generated(),
            Inner::Product(e) => e.steps_generated(),
        }
    }

    /// Number of level-0 join segments generated so far — the slice of the
    /// join output the expansion actually touched. `None` for the non-join
    /// forms, whose base relation is the CSR edge set itself.
    pub fn base_segments(&self) -> Option<usize> {
        match &self.inner {
            Inner::Join(e) => Some(e.base_segments()),
            _ => None,
        }
    }

    /// Bytes currently backing the step arena. The arena only grows, so this
    /// is also its peak footprint (`arena_bytes_peak`).
    pub fn arena_bytes(&self) -> usize {
        match &self.inner {
            Inner::Csr(e) => e.arena_bytes(),
            Inner::Join(e) => e.arena_bytes(),
            Inner::Product(e) => e.arena_bytes(),
        }
    }

    /// Scratch reuse events so far: hoisted level/saturation buffers and
    /// pooled or retained visited-set blocks (`scratch_reuse_count`).
    pub fn scratch_reuse(&self) -> u64 {
        match &self.inner {
            Inner::Csr(e) => e.scratch_reuse(),
            Inner::Join(e) => e.scratch_reuse(),
            Inner::Product(e) => e.scratch_reuse(),
        }
    }

    /// Reserves arena capacity for `steps` further steps up front, so a
    /// drain whose step count is known (or bounded) performs no mid-flight
    /// arena reallocation — see the zero-steady-state-allocation contract in
    /// the crate docs.
    pub fn reserve_steps(&mut self, steps: usize) {
        match &mut self.inner {
            Inner::Csr(e) => e.arena.reserve(steps),
            Inner::Join(e) => e.arena.reserve(steps),
            Inner::Product(e) => e.arena.reserve(steps),
        }
    }

    /// The deterministic work totals of everything pulled from this PMR so
    /// far: arena steps and base segments off the expansion state, emission
    /// and skip tallies from the pull loop, per-source abandonments, budget
    /// claims, and — after a [`Pmr::sliced`] run — the admitting collector's
    /// partition and kept-path counts. A path filtered before realisation
    /// (target-mask miss, or a sliced path the collector provably would not
    /// keep) counts as skipped; a sliced would-not-keep path was also
    /// emitted by the expansion first, so `emitted` is the expansion-side
    /// tally and `kept` the collector-side one. On serial-parity schedules
    /// the whole record is byte-identical at every thread count (see
    /// [`parallel`]).
    pub fn work_counters(&self) -> WorkCounters {
        WorkCounters {
            arena_steps: self.steps_generated() as u64,
            base_segments: self.base_segments().unwrap_or(0) as u64,
            paths_emitted: self.counts.emitted,
            paths_skipped: self.counts.skipped,
            sources_abandoned: self.counts.abandoned,
            budget_claimed: self.budget_count() as u64,
            partitions_opened: self.counts.partitions,
            paths_kept: self.counts.kept,
            arena_bytes_peak: self.arena_bytes() as u64,
            scratch_reuse_count: self.scratch_reuse(),
            ..WorkCounters::default()
        }
    }

    /// Paths recorded against the expansion's [`PathBudget`] so far. For a
    /// batch-restricted PMR sharing one budget this is the *global* tally,
    /// so the parallel merge reads it once instead of summing per batch.
    pub(crate) fn budget_count(&self) -> usize {
        match &self.inner {
            Inner::Csr(e) => e.budget_count(),
            Inner::Join(e) => e.budget_count(),
            Inner::Product(e) => e.budget_count(),
        }
    }

    /// The next path in canonical order, or `None` when exhausted.
    pub fn next_path(&mut self) -> Result<Option<Path>, AlgebraError> {
        Ok(self.next_emit()?.map(|e| self.realize(&e)))
    }

    /// Up to `max` further paths in canonical order.
    pub fn next_batch(&mut self, max: usize) -> Result<Vec<Path>, AlgebraError> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.next_path()? {
                Some(p) => out.push(p),
                None => break,
            }
        }
        Ok(out)
    }

    /// The first `k` paths of the enumeration — `enumerate().take(k)`,
    /// computed without expanding past what those `k` paths require.
    pub fn top_k(&mut self, k: usize) -> Result<PathSet, AlgebraError> {
        Ok(self.next_batch(k)?.into_iter().collect())
    }

    /// Drains the whole enumeration into a materialised [`PathSet`] —
    /// identical, in content and order, to the engine's materialised
    /// frontier evaluation of the same operator.
    pub fn enumerate_all(&mut self) -> Result<PathSet, AlgebraError> {
        let mut out = PathSet::new();
        while let Some(p) = self.next_path()? {
            out.insert(p);
        }
        Ok(out)
    }

    /// Drains the rest of the enumeration, counting paths without
    /// reconstructing a single one — the cardinality of
    /// [`Pmr::enumerate_all`] at arena cost. With the scratch buffers warm
    /// and the arena pre-reserved ([`Pmr::reserve_steps`]) the drain performs
    /// no heap allocation (pinned by the allocation-counter test).
    pub fn count_all(&mut self) -> Result<usize, AlgebraError> {
        let mut n = 0usize;
        while self.next_emit()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Counts up to `max` further paths without reconstructing any — the
    /// bounded form of [`Pmr::count_all`] for enumerations too large to
    /// drain (the million-scale benches and the allocation-counter test
    /// pull a fixed number of emits and stop).
    pub fn count_batch(&mut self, max: usize) -> Result<usize, AlgebraError> {
        let mut n = 0usize;
        while n < max && self.next_emit()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// γψ group cardinalities over the whole multiset, computed from the
    /// arena's `(First, Last, Len)` triples — no path is ever reconstructed.
    pub fn group_counts(&mut self, key: GroupKey) -> Result<GroupCounts, AlgebraError> {
        let mut triples: Vec<(NodeId, NodeId, usize)> = Vec::new();
        while let Some(e) = self.next_emit()? {
            triples.push((e.source, e.last, e.len));
        }
        Ok(group_counts_from_triples(key, triples))
    }

    /// Evaluates `π(τA?(γψ(ϕ(…))))` over this multiset with the limits of
    /// `spec` pushed into the enumeration. Byte-identical to materialising
    /// [`Pmr::enumerate_all`] and running the γ/τ/π operators, but:
    ///
    /// * paths beyond a group's cap are skipped without reconstruction,
    /// * a source is abandoned as soon as every group it can still
    ///   contribute to (computed by a node-level reachability BFS for the
    ///   CSR form) holds its `per_group` quota, and
    /// * once the partition limit is reached, sources that can only open new
    ///   partitions are never expanded at all — and a source caught
    ///   mid-expansion by the closing limit switches to per-partition
    ///   accounting (only its already-opened groups must fill, matching the
    ///   §10 parallel batch worker's sharp stop).
    pub fn sliced(&mut self, spec: &SliceSpec) -> Result<PathSet, AlgebraError> {
        let mut collector = SliceCollector::new(spec);
        let source_partitioned = spec.group_key.partitions_by_source();
        let mut cur_source: Option<NodeId> = None;
        let mut requirements: Vec<PartitionKey> = Vec::new();
        // Partitions the current source has opened — the only ones that must
        // fill before the sharp (partition-limit-closed) stop may skip the
        // source.
        let mut src_keys: Vec<PartitionKey> = Vec::new();

        while let Some(emit) = self.next_emit()? {
            if cur_source != Some(emit.source) {
                cur_source = Some(emit.source);
                // Every path of a fresh source opens a fresh partition under
                // source-partitioned keys; once the partition limit is
                // reached nothing from this or any later source can be kept.
                if source_partitioned && !collector.accepts_new_partition() {
                    break;
                }
                requirements = self.requirements_for(emit.source, spec);
                src_keys.clear();
            }
            let key: PartitionKey = (
                spec.group_key.partitions_by_source().then_some(emit.source),
                spec.group_key.partitions_by_target().then_some(emit.last),
            );
            if collector.would_keep(&key) {
                let path = self.realize(&emit);
                let partitions_before = collector.partition_count();
                let state = collector.offer(path);
                if collector.partition_count() > partitions_before {
                    src_keys.push(key);
                }
                if state == SliceState::Complete {
                    break;
                }
            } else {
                // Provably not kept: skipped without reconstruction.
                self.counts.skipped += 1;
            }
            if spec.per_group.is_some() {
                let source_done = match spec.group_key {
                    GroupKey::Source => collector.group_is_full(&(Some(emit.source), None)),
                    GroupKey::SourceTarget => {
                        if !collector.accepts_new_partition() {
                            // Per-partition accounting (mirroring the §10
                            // parallel batch worker): the partition limit is
                            // closed, so no further group of this source can
                            // be admitted — only the already-opened ones need
                            // to fill, not every reachable one.
                            src_keys.iter().all(|k| collector.group_is_full(k))
                        } else {
                            !requirements.is_empty()
                                && requirements.iter().all(|k| collector.group_is_full(k))
                        }
                    }
                    _ => false,
                };
                if source_done {
                    self.skip_source();
                }
            }
        }
        self.counts.partitions = collector.partition_count() as u64;
        let out = collector.finish();
        self.counts.kept = out.len() as u64;
        Ok(out)
    }

    /// The full set of groups source `s` can ever contribute to, for the
    /// reachability-based source stop — only computed for the CSR and join
    /// forms under γST with a per-group cap, and skipped for Shortest (whose
    /// per-source expansion saturates on its own). Groups outside the pushed
    /// target mask are excluded: they can never receive a path, so waiting
    /// for them would block the stop forever.
    pub(crate) fn requirements_for(
        &mut self,
        source: NodeId,
        spec: &SliceSpec,
    ) -> Vec<PartitionKey> {
        if spec.group_key != GroupKey::SourceTarget || spec.per_group.is_none() {
            return Vec::new();
        }
        let (semantics, ReachInfo { open, min_closed }) = match &mut self.inner {
            Inner::Csr(e) => {
                if e.semantics() == PathSemantics::Shortest {
                    return Vec::new();
                }
                (e.semantics(), e.reachability(source))
            }
            Inner::Join(e) => {
                if e.semantics() == PathSemantics::Shortest {
                    return Vec::new();
                }
                (e.semantics(), e.reachability(source))
            }
            Inner::Product(_) => return Vec::new(),
        };
        let mut keys: Vec<PartitionKey> = open
            .into_iter()
            .filter(|&t| self.target_admits(t))
            .map(|t| (Some(source), Some(t)))
            .collect();
        if semantics != PathSemantics::Acyclic && min_closed.is_some() && self.target_admits(source)
        {
            keys.push((Some(source), Some(source)));
        }
        keys
    }
}

impl LazyPathStream for Pmr<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<Path>, AlgebraError> {
        Pmr::next_batch(self, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::group_by::group_by;
    use pathalg_core::ops::recursive::recursive;
    use pathalg_core::ops::selection::selection;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::structured::{chain_graph, complete_graph, cycle_graph};

    fn knows_closure(f: &Figure1, semantics: PathSemantics) -> PathSet {
        let base = selection(
            &f.graph,
            &Condition::edge_label(1, "Knows"),
            &PathSet::edges(&f.graph),
        );
        recursive(semantics, &base, &RecursionConfig::default()).unwrap()
    }

    #[test]
    fn csr_enumeration_matches_the_fixpoint_as_a_set() {
        let f = Figure1::new();
        for semantics in [
            PathSemantics::Trail,
            PathSemantics::Acyclic,
            PathSemantics::Simple,
            PathSemantics::Shortest,
        ] {
            let expected = knows_closure(&f, semantics);
            let mut pmr =
                Pmr::from_label_scan(&f.graph, "Knows", semantics, RecursionConfig::default());
            let out = pmr.enumerate_all().unwrap();
            assert_eq!(out, expected, "{semantics:?}");
        }
    }

    #[test]
    fn top_k_is_a_prefix_of_the_enumeration() {
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        let mut full = Pmr::from_label_scan(&f.graph, "Knows", PathSemantics::Trail, cfg);
        let all = full.enumerate_all().unwrap();
        for k in [0, 1, 3, 7, 100] {
            let mut pmr = Pmr::from_label_scan(&f.graph, "Knows", PathSemantics::Trail, cfg);
            let top = pmr.top_k(k).unwrap();
            let expected: Vec<_> = all.iter().take(k).cloned().collect();
            assert_eq!(top.as_slice(), expected.as_slice(), "k = {k}");
        }
    }

    #[test]
    fn top_k_expands_less_than_the_full_multiset() {
        // Bounded walks on a complete graph: the closure is exponential in
        // the bound, the first path needs one level of one source.
        let g = complete_graph(6, "a");
        let cfg = RecursionConfig {
            max_length: Some(4),
            max_paths: None,
        };
        let mut full = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        let total = full.enumerate_all().unwrap().len();
        let mut lazy = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        lazy.top_k(5).unwrap();
        assert!(
            lazy.steps_generated() * 10 < total,
            "top-5 expanded {} steps against a {}-path multiset",
            lazy.steps_generated(),
            total
        );
    }

    #[test]
    fn group_counts_match_group_by_without_reconstruction() {
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        let materialised = {
            let mut pmr = Pmr::from_label_scan(&f.graph, "Knows", PathSemantics::Trail, cfg);
            pmr.enumerate_all().unwrap()
        };
        for key in [
            GroupKey::Empty,
            GroupKey::Source,
            GroupKey::SourceTarget,
            GroupKey::Length,
            GroupKey::SourceTargetLength,
        ] {
            let ss = group_by(key, &materialised);
            let mut pmr = Pmr::from_label_scan(&f.graph, "Knows", PathSemantics::Trail, cfg);
            let counts = pmr.group_counts(key).unwrap();
            assert_eq!(counts.group_count(), ss.group_count(), "γ{key}");
            assert_eq!(counts.path_count(), ss.path_count(), "γ{key}");
            for (i, (gkey, n)) in counts.entries.iter().enumerate() {
                assert_eq!(*gkey, ss.groups()[i].key, "γ{key} group {i}");
                assert_eq!(*n, ss.groups()[i].paths.len(), "γ{key} group {i}");
            }
        }
    }

    #[test]
    fn sliced_equals_the_materialised_pipeline_and_stops_early() {
        use pathalg_core::ops::order_by::{order_by, OrderKey};
        use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};

        let g = complete_graph(6, "a");
        let cfg = RecursionConfig {
            max_length: Some(4),
            max_paths: None,
        };
        let mut full = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        let materialised = full.enumerate_all().unwrap();
        let expected = projection(
            &ProjectionSpec::new(Take::All, Take::All, Take::Count(1)),
            &order_by(
                OrderKey::Path,
                &group_by(GroupKey::SourceTarget, &materialised),
            ),
        );

        let spec = SliceSpec {
            group_key: GroupKey::SourceTarget,
            per_group: Some(1),
            max_partitions: None,
            ordered_by_length: true,
        };
        let mut lazy = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        let out = lazy.sliced(&spec).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
        assert!(
            lazy.steps_generated() * 10 < full.steps_generated(),
            "sliced evaluation expanded {} of {} steps",
            lazy.steps_generated(),
            full.steps_generated()
        );
    }

    #[test]
    fn sliced_handles_closed_groups_on_cycles() {
        use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};

        // Every (s, s) pair of a directed cycle has exactly one simple closed
        // path; the reachability stop must wait for it.
        let g = cycle_graph(5, "a");
        let cfg = RecursionConfig::default();
        for semantics in [PathSemantics::Trail, PathSemantics::Simple] {
            let mut full = Pmr::from_csr(CsrGraph::with_label(&g, "a"), semantics, cfg);
            let materialised = full.enumerate_all().unwrap();
            let expected = projection(
                &ProjectionSpec::new(Take::All, Take::All, Take::Count(1)),
                &group_by(GroupKey::SourceTarget, &materialised),
            );
            let spec = SliceSpec {
                group_key: GroupKey::SourceTarget,
                per_group: Some(1),
                max_partitions: None,
                ordered_by_length: false,
            };
            let mut lazy = Pmr::from_csr(CsrGraph::with_label(&g, "a"), semantics, cfg);
            let out = lazy.sliced(&spec).unwrap();
            assert_eq!(out.as_slice(), expected.as_slice(), "{semantics:?}");
            // 5×5 ordered pairs, all connected on a cycle.
            assert_eq!(out.len(), 25, "{semantics:?}");
        }
    }

    #[test]
    fn partition_limit_stops_whole_sources() {
        use pathalg_core::ops::projection::{projection, ProjectionSpec, Take};

        let g = complete_graph(6, "a");
        let cfg = RecursionConfig {
            max_length: Some(3),
            max_paths: None,
        };
        let mut full = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        let materialised = full.enumerate_all().unwrap();
        let expected = projection(
            &ProjectionSpec::new(Take::Count(2), Take::All, Take::Count(2)),
            &group_by(GroupKey::Source, &materialised),
        );
        let spec = SliceSpec {
            group_key: GroupKey::Source,
            per_group: Some(2),
            max_partitions: Some(2),
            ordered_by_length: false,
        };
        let mut lazy = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        let out = lazy.sliced(&spec).unwrap();
        assert_eq!(out.as_slice(), expected.as_slice());
        assert!(lazy.steps_generated() * 20 < full.steps_generated());
    }

    #[test]
    fn product_form_agrees_with_the_compiled_algebra() {
        use pathalg_rpq::parse::parse_regex;
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        for (pattern, semantics) in [
            (":Knows+", PathSemantics::Trail),
            (":Knows+", PathSemantics::Shortest),
            ("(:Likes/:Has_creator)*", PathSemantics::Simple),
            (":Knows/:Knows", PathSemantics::Walk),
        ] {
            let re = parse_regex(pattern).unwrap();
            let plan = pathalg_rpq::compile::compile_to_algebra(&re, semantics);
            let expected = pathalg_core::eval::Evaluator::new(&f.graph)
                .eval_paths(&plan)
                .unwrap();
            let mut pmr = Pmr::from_regex(&f.graph, &re, semantics, cfg);
            let out = pmr.enumerate_all().unwrap();
            assert_eq!(out, expected, "{pattern} under {semantics:?}");
        }
    }

    #[test]
    fn walk_errors_mirror_the_materialised_evaluation() {
        let g = cycle_graph(3, "a");
        let cfg = RecursionConfig::unbounded();
        let mut pmr = Pmr::from_csr(CsrGraph::with_label(&g, "a"), PathSemantics::Walk, cfg);
        assert!(matches!(
            pmr.enumerate_all(),
            Err(AlgebraError::RecursionLimitExceeded { .. })
        ));
        // On a DAG the unbounded walk closure is finite and enumerable.
        let dag = chain_graph(6, "a");
        let mut pmr = Pmr::from_csr(CsrGraph::with_label(&dag, "a"), PathSemantics::Walk, cfg);
        assert_eq!(pmr.enumerate_all().unwrap().len(), 15);
    }

    #[test]
    fn max_paths_is_enforced_on_full_drains() {
        let f = Figure1::new();
        let cfg = RecursionConfig {
            max_length: Some(10),
            max_paths: Some(4),
        };
        let mut pmr = Pmr::from_label_scan(&f.graph, "Knows", PathSemantics::Walk, cfg);
        assert_eq!(
            pmr.enumerate_all(),
            Err(AlgebraError::ResultLimitExceeded { limit: 4 })
        );
    }

    #[test]
    fn empty_label_yields_an_empty_enumeration() {
        let f = Figure1::new();
        let mut pmr = Pmr::from_label_scan(
            &f.graph,
            "NoSuchLabel",
            PathSemantics::Trail,
            RecursionConfig::default(),
        );
        assert!(pmr.enumerate_all().unwrap().is_empty());
        assert_eq!(pmr.steps_generated(), 0);
    }
}
