//! Lazy, level-ordered expansion of `ϕ(σℓ(Edges(G)))` over a CSR snapshot.
//!
//! This is the PMR counterpart of the engine's
//! `physical::frontier::expand_csr_source`: the same per-source, level-by-
//! level expansion with the same admission predicates and the same Shortest
//! pruning, but *pull-driven* — levels are computed only when a consumer asks
//! for more paths — and storing each discovered path as one arena step
//! instead of a materialised `Path`. The emission order is byte-identical to
//! the frontier engine's insertion order (sources ascending, levels in
//! order, adjacency order within a level), which is the canonical-order
//! contract of [`pathalg_core::pathset_repr::LazyPathStream`].
//!
//! Expansion is level-synchronous, so path lengths are not stored per step:
//! the current level's length lives in one field and is threaded alongside
//! each queued step id (see [`crate::arena`]). All per-level and per-source
//! scratch (`cur`/`next` candidate buffers, the Shortest saturation buffers)
//! is owned by the expansion and reused across levels and sources — the
//! steady-state drain performs no heap allocation once the buffers and the
//! arena have reached their high-water marks.

use crate::arena::StepArena;
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::ops::recursive::{
    PathSemantics, RecursionConfig, UNBOUNDED_WALK_ITERATION_LIMIT,
};
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::frontier::Frontier;
use pathalg_graph::ids::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Reachability summary of one source, used by the sliced evaluation to
/// decide when a source's contribution to every kept group is complete.
pub(crate) struct ReachInfo {
    /// Targets with at least one admitted non-empty path from the source
    /// (excluding the source itself), within the configured length bound.
    pub open: Vec<NodeId>,
    /// Length of the shortest closed walk through the source within the
    /// bound, if one exists (a shortest closed walk is a simple cycle, so a
    /// closed path exists under every semantics except Acyclic).
    pub min_closed: Option<usize>,
}

/// The lazy CSR expander (see the module docs).
pub(crate) struct CsrExpansion {
    csr: Arc<CsrGraph>,
    semantics: PathSemantics,
    config: RecursionConfig,
    walk_unbounded: bool,
    sources: Vec<NodeId>,
    next_source: usize,
    pub(crate) arena: StepArena,
    /// Per-step acyclicity flags, tracked only under unbounded Walk (where a
    /// non-acyclic candidate proves the fixpoint is infinite).
    acyclic: Vec<bool>,
    /// Steps of the current level; all chains in it have `cur_len` edges.
    cur: Vec<u32>,
    /// Recycled buffer for the next level (swapped with `cur` per level).
    next_buf: Vec<u32>,
    cur_len: u32,
    cur_source: NodeId,
    iterations: usize,
    src_emitted: usize,
    /// Emitted-but-unpulled steps with their path lengths.
    pending: VecDeque<(u32, u32)>,
    /// The `max_paths` accounting — owned by default, shared across batch
    /// workers under parallel enumeration ([`crate::parallel`]). Level-0
    /// steps are recorded (counted, never limit-checked), recursion
    /// candidates are claimed, mirroring the frontier engine.
    budget: Arc<PathBudget>,
    /// Cooperative cancellation, checked once per expansion level (never per
    /// edge, so successful runs stay byte-identical and near-free).
    cancel: Option<Arc<CancelToken>>,
    /// Shortest scratch: per-source visited set + distance table (the table
    /// is only allocated under Shortest semantics) and the recycled
    /// saturation buffers.
    seen: Frontier,
    dist: Vec<usize>,
    sp_all: Vec<(u32, u32)>,
    sp_cur: Vec<u32>,
    sp_next: Vec<u32>,
    /// Reachability scratch for the sliced evaluation; the distance table is
    /// sized on first use.
    reach_seen: Frontier,
    reach_dist: Vec<usize>,
    /// Flat reverse-adjacency index (offsets + predecessors), built on first
    /// use for the closed-walk minimum.
    preds: Option<(Vec<u32>, Vec<NodeId>)>,
    /// Times a hoisted scratch buffer was reused instead of allocated.
    scratch_reuse: u64,
}

impl CsrExpansion {
    pub fn new(csr: Arc<CsrGraph>, semantics: PathSemantics, config: RecursionConfig) -> Self {
        let n = csr.node_count();
        let sources: Vec<NodeId> = (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|&v| csr.out_degree(v) > 0)
            .collect();
        Self {
            csr,
            semantics,
            config,
            walk_unbounded: semantics == PathSemantics::Walk && config.max_length.is_none(),
            sources,
            next_source: 0,
            arena: StepArena::default(),
            acyclic: Vec::new(),
            cur: Vec::new(),
            next_buf: Vec::new(),
            cur_len: 0,
            cur_source: NodeId(0),
            iterations: 0,
            src_emitted: 0,
            pending: VecDeque::new(),
            budget: Arc::new(PathBudget::new(config.max_paths)),
            cancel: None,
            seen: Frontier::new(n),
            // Only Shortest reads distances; other semantics skip the O(n)
            // zero-fill entirely (the Frontier itself is lazily allocated).
            dist: if semantics == PathSemantics::Shortest {
                vec![0; n]
            } else {
                Vec::new()
            },
            sp_all: Vec::new(),
            sp_cur: Vec::new(),
            sp_next: Vec::new(),
            reach_seen: Frontier::new(n),
            reach_dist: Vec::new(),
            preds: None,
            scratch_reuse: 0,
        }
    }

    /// The next emitted arena step, with its source and path length, in
    /// canonical order.
    pub fn next_id(&mut self) -> Result<Option<(u32, NodeId, u32)>, AlgebraError> {
        if !self.ensure_pending()? {
            return Ok(None);
        }
        let (id, len) = self.pending.pop_front().expect("ensure_pending");
        Ok(Some((id, self.cur_source, len)))
    }

    /// Drops everything still queued or expandable for the current source;
    /// the next pull starts the next source.
    pub fn skip_source(&mut self) {
        self.pending.clear();
        self.cur.clear();
    }

    /// Number of arena steps allocated so far (the generated-work measure).
    pub fn steps_generated(&self) -> usize {
        self.arena.len()
    }

    /// Bytes currently backing the step arena (see `arena_bytes_peak`).
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Scratch reuse events: hoisted buffers plus pooled/retained visited
    /// sets (see `scratch_reuse_count`).
    pub fn scratch_reuse(&self) -> u64 {
        self.scratch_reuse + self.seen.reuse_count() + self.reach_seen.reuse_count()
    }

    /// Paths recorded against the (possibly shared) budget so far.
    pub(crate) fn budget_count(&self) -> usize {
        self.budget.count()
    }

    /// The path semantics this expansion enumerates under.
    pub fn semantics(&self) -> PathSemantics {
        self.semantics
    }

    /// Restricts expansion to sources marked in `keep` (σ-first pushdown).
    /// Must be applied before the first pull.
    pub fn restrict_sources(&mut self, keep: &[bool]) {
        self.sources.retain(|v| keep.get(v.index()) == Some(&true));
    }

    /// The remaining source schedule (the full schedule before any pull).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources[self.next_source..]
    }

    /// Replaces the source schedule (already filtered, ascending). Must be
    /// applied before the first pull.
    pub fn set_sources(&mut self, sources: Vec<NodeId>) {
        self.sources = sources;
        self.next_source = 0;
    }

    /// Replaces the owned `max_paths` budget with a shared one, so several
    /// batch-restricted expansions enforce one global limit. Must be applied
    /// before the first pull.
    pub fn share_budget(&mut self, budget: Arc<PathBudget>) {
        self.budget = budget;
    }

    /// Installs a shared cancellation token, checked at every expansion
    /// level. May be applied at any time; the next level boundary observes it.
    pub fn share_cancel(&mut self, cancel: Arc<CancelToken>) {
        self.cancel = Some(cancel);
    }

    fn check_cancel(&self) -> Result<(), AlgebraError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    fn within(&self, len: usize) -> bool {
        self.config.max_length.is_none_or(|l| len <= l)
    }

    fn ensure_pending(&mut self) -> Result<bool, AlgebraError> {
        loop {
            if !self.pending.is_empty() {
                return Ok(true);
            }
            if !self.cur.is_empty() {
                self.advance_level()?;
                continue;
            }
            let Some(&s) = self.sources.get(self.next_source) else {
                return Ok(false);
            };
            self.next_source += 1;
            self.cur_source = s;
            self.iterations = 0;
            self.src_emitted = 0;
            if self.semantics == PathSemantics::Shortest {
                self.expand_source_shortest(s)?;
            } else {
                self.start_level0(s);
            }
        }
    }

    /// Level 0 of one source: one length-1 path per outgoing CSR edge,
    /// exactly as the frontier engine admits them.
    fn start_level0(&mut self, s: NodeId) {
        if !self.within(1) {
            return;
        }
        self.cur_len = 1;
        let (targets, edges) = self.csr.neighbor_slices(s);
        for (&t, &e) in targets.iter().zip(edges) {
            if self.semantics == PathSemantics::Acyclic && t == s {
                continue;
            }
            self.budget.record(1);
            let id = self.arena.push(None, e, t);
            if self.walk_unbounded {
                self.acyclic.push(t != s);
            }
            self.cur.push(id);
            self.pending.push_back((id, 1));
            self.src_emitted += 1;
        }
    }

    /// One level of expansion for the current source (non-Shortest
    /// semantics), with the frontier engine's admission predicates. The
    /// `cur`/`next` buffers are recycled across levels and sources.
    fn advance_level(&mut self) -> Result<(), AlgebraError> {
        self.check_cancel()?;
        self.iterations += 1;
        if self.walk_unbounded && self.iterations > UNBOUNDED_WALK_ITERATION_LIMIT {
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                paths_so_far: self.src_emitted,
            });
        }
        let cur = std::mem::take(&mut self.cur);
        let mut next = std::mem::take(&mut self.next_buf);
        if next.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        next.clear();
        let new_len = self.cur_len as usize + 1;
        if self.within(new_len) {
            for &pid in &cur {
                let head_target = self.arena.target(pid);
                let p_acyclic = !self.walk_unbounded || self.acyclic[pid as usize];
                let (targets, edges) = self.csr.neighbor_slices(head_target);
                for (&t, &e) in targets.iter().zip(edges) {
                    let admissible = match self.semantics {
                        PathSemantics::Walk => true,
                        PathSemantics::Trail => !self.arena.chain_contains_edge(pid, e),
                        PathSemantics::Acyclic => {
                            t != self.cur_source && !self.arena.chain_targets_contain(pid, t)
                        }
                        PathSemantics::Simple | PathSemantics::Shortest => {
                            head_target != self.cur_source
                                && (t == self.cur_source
                                    || !self.arena.chain_targets_contain(pid, t))
                        }
                    };
                    if !admissible {
                        continue;
                    }
                    if self.walk_unbounded
                        && (!p_acyclic
                            || t == self.cur_source
                            || self.arena.chain_targets_contain(pid, t))
                    {
                        return Err(AlgebraError::RecursionLimitExceeded {
                            bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                            paths_so_far: self.src_emitted + next.len(),
                        });
                    }
                    self.budget.claim(1)?;
                    let id = self.arena.push(Some(pid), e, t);
                    if self.walk_unbounded {
                        self.acyclic.push(true);
                    }
                    next.push(id);
                }
            }
        }
        self.src_emitted += next.len();
        self.pending
            .extend(next.iter().map(|&id| (id, new_len as u32)));
        self.cur = next;
        self.next_buf = cur;
        self.cur_len = new_len as u32;
        Ok(())
    }

    /// Shortest semantics saturates per source, so the whole source is
    /// expanded eagerly (as the frontier engine does) and the minimal paths
    /// are queued in level order after the per-target distance filter. The
    /// saturation buffers (`sp_*`) are recycled across sources.
    fn expand_source_shortest(&mut self, s: NodeId) -> Result<(), AlgebraError> {
        self.seen.reset();
        let mut all = std::mem::take(&mut self.sp_all);
        let mut cur = std::mem::take(&mut self.sp_cur);
        let mut next = std::mem::take(&mut self.sp_next);
        if all.capacity() + cur.capacity() + next.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        all.clear();
        cur.clear();
        next.clear();
        let mut cur_len: u32 = 1;
        if self.within(1) {
            let (targets, edges) = self.csr.neighbor_slices(s);
            for (&t, &e) in targets.iter().zip(edges) {
                if self.seen.insert(t) {
                    self.dist[t.index()] = 1;
                }
                self.budget.record(1);
                cur.push(self.arena.push(None, e, t));
            }
        }
        while !cur.is_empty() {
            self.check_cancel()?;
            next.clear();
            let new_len = cur_len as usize + 1;
            if self.within(new_len) {
                for &pid in &cur {
                    let head_target = self.arena.target(pid);
                    let (targets, edges) = self.csr.neighbor_slices(head_target);
                    for (&t, &e) in targets.iter().zip(edges) {
                        let admissible = head_target != s
                            && (t == s || !self.arena.chain_targets_contain(pid, t));
                        if !admissible {
                            continue;
                        }
                        if self.seen.contains(t) && new_len > self.dist[t.index()] {
                            continue;
                        }
                        if self.seen.insert(t) {
                            self.dist[t.index()] = new_len;
                        }
                        self.budget.claim(1)?;
                        next.push(self.arena.push(Some(pid), e, t));
                    }
                }
            }
            all.extend(cur.iter().map(|&id| (id, cur_len)));
            std::mem::swap(&mut cur, &mut next);
            cur_len = new_len as u32;
        }
        for &(id, len) in &all {
            let target = self.arena.target(id);
            if self.seen.contains(target) && self.dist[target.index()] == len as usize {
                self.pending.push_back((id, len));
                self.src_emitted += 1;
            }
        }
        self.sp_all = all;
        self.sp_cur = cur;
        self.sp_next = next;
        Ok(())
    }

    /// The reachability summary of `source` within the length bound: a BFS
    /// over the CSR nodes (polynomial, independent of how many *paths*
    /// exist). Sound and complete for group discovery under every semantics:
    /// the shortest walk to any reachable target is a simple path, so it is
    /// admitted by Walk, Trail, Acyclic (open targets), Simple and Shortest
    /// alike, and no admitted path can reach a node the walk BFS cannot.
    pub fn reachability(&mut self, source: NodeId) -> ReachInfo {
        let bound = self.config.max_length.unwrap_or(usize::MAX);
        if self.reach_dist.len() < self.csr.node_count() {
            self.reach_dist.resize(self.csr.node_count(), 0);
        }
        self.reach_seen.reset();
        self.reach_seen.insert(source);
        self.reach_dist[source.index()] = 0;
        let mut frontier = self.reach_seen.len() - 1;
        while frontier < self.reach_seen.len() {
            // The members list doubles as the BFS queue: it grows in
            // insertion order, which *is* BFS order.
            let u = self.reach_seen.members()[frontier];
            frontier += 1;
            let d = self.reach_dist[u.index()];
            if d >= bound {
                continue;
            }
            let (targets, _) = self.csr.neighbor_slices(u);
            for &t in targets {
                if self.reach_seen.insert(t) {
                    self.reach_dist[t.index()] = d + 1;
                }
            }
        }
        let open: Vec<NodeId> = self
            .reach_seen
            .members()
            .iter()
            .copied()
            .filter(|&t| t != source)
            .collect();
        if self.preds.is_none() {
            // Flat reverse-adjacency index: one counting pass, one prefix
            // sum, one fill — no per-node Vec allocations.
            let n = self.csr.node_count();
            let mut offsets = vec![0u32; n + 1];
            for i in 0..n {
                let (targets, _) = self.csr.neighbor_slices(NodeId(i as u32));
                for &t in targets {
                    offsets[t.index() + 1] += 1;
                }
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut flat = vec![NodeId(0); offsets[n] as usize];
            let mut cursor = offsets.clone();
            for i in 0..n {
                let u = NodeId(i as u32);
                let (targets, _) = self.csr.neighbor_slices(u);
                for &t in targets {
                    flat[cursor[t.index()] as usize] = u;
                    cursor[t.index()] += 1;
                }
            }
            self.preds = Some((offsets, flat));
        }
        let (offsets, flat) = self.preds.as_ref().expect("built above");
        let lo = offsets[source.index()] as usize;
        let hi = offsets[source.index() + 1] as usize;
        let min_closed = flat[lo..hi]
            .iter()
            .filter(|&&u| self.reach_seen.contains(u))
            .map(|&u| self.reach_dist[u.index()] + 1)
            .min()
            .filter(|&l| l <= bound);
        ReachInfo { open, min_closed }
    }
}
