//! Lazy, level-ordered expansion of `ϕ(σℓ(Edges(G)))` over a CSR snapshot.
//!
//! This is the PMR counterpart of the engine's
//! `physical::frontier::expand_csr_source`: the same per-source, level-by-
//! level expansion with the same admission predicates and the same Shortest
//! pruning, but *pull-driven* — levels are computed only when a consumer asks
//! for more paths — and storing each discovered path as one arena [`Step`]
//! instead of a materialised `Path`. The emission order is byte-identical to
//! the frontier engine's insertion order (sources ascending, levels in
//! order, adjacency order within a level), which is the canonical-order
//! contract of [`pathalg_core::pathset_repr::LazyPathStream`].

use crate::arena::{StepArena, NO_PARENT};
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::ops::recursive::{
    PathSemantics, RecursionConfig, UNBOUNDED_WALK_ITERATION_LIMIT,
};
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::frontier::Frontier;
use pathalg_graph::ids::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// Reachability summary of one source, used by the sliced evaluation to
/// decide when a source's contribution to every kept group is complete.
pub(crate) struct ReachInfo {
    /// Targets with at least one admitted non-empty path from the source
    /// (excluding the source itself), within the configured length bound.
    pub open: Vec<NodeId>,
    /// Length of the shortest closed walk through the source within the
    /// bound, if one exists (a shortest closed walk is a simple cycle, so a
    /// closed path exists under every semantics except Acyclic).
    pub min_closed: Option<usize>,
}

/// The lazy CSR expander (see the module docs).
pub(crate) struct CsrExpansion {
    csr: Arc<CsrGraph>,
    semantics: PathSemantics,
    config: RecursionConfig,
    walk_unbounded: bool,
    sources: Vec<NodeId>,
    next_source: usize,
    pub(crate) arena: StepArena,
    /// Per-step acyclicity flags, tracked only under unbounded Walk (where a
    /// non-acyclic candidate proves the fixpoint is infinite).
    acyclic: Vec<bool>,
    cur: Vec<u32>,
    cur_source: NodeId,
    iterations: usize,
    src_emitted: usize,
    pending: VecDeque<u32>,
    /// The `max_paths` accounting — owned by default, shared across batch
    /// workers under parallel enumeration ([`crate::parallel`]). Level-0
    /// steps are recorded (counted, never limit-checked), recursion
    /// candidates are claimed, mirroring the frontier engine.
    budget: Arc<PathBudget>,
    /// Cooperative cancellation, checked once per expansion level (never per
    /// edge, so successful runs stay byte-identical and near-free).
    cancel: Option<Arc<CancelToken>>,
    /// Shortest scratch: per-source visited set + distance table.
    seen: Frontier,
    dist: Vec<usize>,
    /// Reachability scratch for the sliced evaluation.
    reach_seen: Frontier,
    reach_dist: Vec<usize>,
    /// Predecessor lists, built on first use (closed-walk minimum).
    preds: Option<Vec<Vec<NodeId>>>,
}

impl CsrExpansion {
    pub fn new(csr: Arc<CsrGraph>, semantics: PathSemantics, config: RecursionConfig) -> Self {
        let n = csr.node_count();
        let sources: Vec<NodeId> = (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|&v| csr.out_degree(v) > 0)
            .collect();
        Self {
            csr,
            semantics,
            config,
            walk_unbounded: semantics == PathSemantics::Walk && config.max_length.is_none(),
            sources,
            next_source: 0,
            arena: StepArena::default(),
            acyclic: Vec::new(),
            cur: Vec::new(),
            cur_source: NodeId(0),
            iterations: 0,
            src_emitted: 0,
            pending: VecDeque::new(),
            budget: Arc::new(PathBudget::new(config.max_paths)),
            cancel: None,
            seen: Frontier::new(n),
            dist: vec![0; n],
            reach_seen: Frontier::new(n),
            reach_dist: vec![0; n],
            preds: None,
        }
    }

    /// The next emitted arena step, with its source, in canonical order.
    pub fn next_id(&mut self) -> Result<Option<(u32, NodeId)>, AlgebraError> {
        if !self.ensure_pending()? {
            return Ok(None);
        }
        let id = self.pending.pop_front().expect("ensure_pending");
        Ok(Some((id, self.cur_source)))
    }

    /// Drops everything still queued or expandable for the current source;
    /// the next pull starts the next source.
    pub fn skip_source(&mut self) {
        self.pending.clear();
        self.cur.clear();
    }

    /// Number of arena steps allocated so far (the generated-work measure).
    pub fn steps_generated(&self) -> usize {
        self.arena.len()
    }

    /// Paths recorded against the (possibly shared) budget so far.
    pub(crate) fn budget_count(&self) -> usize {
        self.budget.count()
    }

    /// The path semantics this expansion enumerates under.
    pub fn semantics(&self) -> PathSemantics {
        self.semantics
    }

    /// Restricts expansion to sources marked in `keep` (σ-first pushdown).
    /// Must be applied before the first pull.
    pub fn restrict_sources(&mut self, keep: &[bool]) {
        self.sources.retain(|v| keep.get(v.index()) == Some(&true));
    }

    /// The remaining source schedule (the full schedule before any pull).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources[self.next_source..]
    }

    /// Replaces the source schedule (already filtered, ascending). Must be
    /// applied before the first pull.
    pub fn set_sources(&mut self, sources: Vec<NodeId>) {
        self.sources = sources;
        self.next_source = 0;
    }

    /// Replaces the owned `max_paths` budget with a shared one, so several
    /// batch-restricted expansions enforce one global limit. Must be applied
    /// before the first pull.
    pub fn share_budget(&mut self, budget: Arc<PathBudget>) {
        self.budget = budget;
    }

    /// Installs a shared cancellation token, checked at every expansion
    /// level. May be applied at any time; the next level boundary observes it.
    pub fn share_cancel(&mut self, cancel: Arc<CancelToken>) {
        self.cancel = Some(cancel);
    }

    fn check_cancel(&self) -> Result<(), AlgebraError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    fn within(&self, len: usize) -> bool {
        self.config.max_length.is_none_or(|l| len <= l)
    }

    fn ensure_pending(&mut self) -> Result<bool, AlgebraError> {
        loop {
            if !self.pending.is_empty() {
                return Ok(true);
            }
            if !self.cur.is_empty() {
                self.advance_level()?;
                continue;
            }
            let Some(&s) = self.sources.get(self.next_source) else {
                return Ok(false);
            };
            self.next_source += 1;
            self.cur_source = s;
            self.iterations = 0;
            self.src_emitted = 0;
            if self.semantics == PathSemantics::Shortest {
                self.expand_source_shortest(s)?;
            } else {
                self.start_level0(s);
            }
        }
    }

    /// Level 0 of one source: one length-1 path per outgoing CSR edge,
    /// exactly as the frontier engine admits them.
    fn start_level0(&mut self, s: NodeId) {
        if !self.within(1) {
            return;
        }
        let (targets, edges) = self.csr.neighbor_slices(s);
        for (&t, &e) in targets.iter().zip(edges) {
            if self.semantics == PathSemantics::Acyclic && t == s {
                continue;
            }
            self.budget.record(1);
            let id = self.arena.push(NO_PARENT, e, t, 1);
            if self.walk_unbounded {
                self.acyclic.push(t != s);
            }
            self.cur.push(id);
            self.pending.push_back(id);
            self.src_emitted += 1;
        }
    }

    /// One level of expansion for the current source (non-Shortest
    /// semantics), with the frontier engine's admission predicates.
    fn advance_level(&mut self) -> Result<(), AlgebraError> {
        self.check_cancel()?;
        self.iterations += 1;
        if self.walk_unbounded && self.iterations > UNBOUNDED_WALK_ITERATION_LIMIT {
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                paths_so_far: self.src_emitted,
            });
        }
        let cur = std::mem::take(&mut self.cur);
        let mut next: Vec<u32> = Vec::new();
        for &pid in &cur {
            let head = *self.arena.step(pid);
            let new_len = head.len as usize + 1;
            if !self.within(new_len) {
                continue;
            }
            let p_acyclic = !self.walk_unbounded || self.acyclic[pid as usize];
            let (targets, edges) = self.csr.neighbor_slices(head.target);
            for (&t, &e) in targets.iter().zip(edges) {
                let admissible = match self.semantics {
                    PathSemantics::Walk => true,
                    PathSemantics::Trail => !self.arena.chain_contains_edge(pid, e),
                    PathSemantics::Acyclic => {
                        t != self.cur_source && !self.arena.chain_targets_contain(pid, t)
                    }
                    PathSemantics::Simple | PathSemantics::Shortest => {
                        head.target != self.cur_source
                            && (t == self.cur_source || !self.arena.chain_targets_contain(pid, t))
                    }
                };
                if !admissible {
                    continue;
                }
                if self.walk_unbounded
                    && (!p_acyclic
                        || t == self.cur_source
                        || self.arena.chain_targets_contain(pid, t))
                {
                    return Err(AlgebraError::RecursionLimitExceeded {
                        bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                        paths_so_far: self.src_emitted + next.len(),
                    });
                }
                self.budget.claim(1)?;
                let id = self.arena.push(pid, e, t, new_len as u32);
                if self.walk_unbounded {
                    self.acyclic.push(true);
                }
                next.push(id);
            }
        }
        self.src_emitted += next.len();
        self.pending.extend(next.iter().copied());
        self.cur = next;
        Ok(())
    }

    /// Shortest semantics saturates per source, so the whole source is
    /// expanded eagerly (as the frontier engine does) and the minimal paths
    /// are queued in level order after the per-target distance filter.
    fn expand_source_shortest(&mut self, s: NodeId) -> Result<(), AlgebraError> {
        self.seen.reset();
        let mut all: Vec<u32> = Vec::new();
        let mut cur: Vec<u32> = Vec::new();
        if self.within(1) {
            let (targets, edges) = self.csr.neighbor_slices(s);
            for (&t, &e) in targets.iter().zip(edges) {
                if self.seen.insert(t) {
                    self.dist[t.index()] = 1;
                }
                self.budget.record(1);
                cur.push(self.arena.push(NO_PARENT, e, t, 1));
            }
        }
        while !cur.is_empty() {
            self.check_cancel()?;
            let mut next: Vec<u32> = Vec::new();
            for &pid in &cur {
                let head = *self.arena.step(pid);
                let new_len = head.len as usize + 1;
                if !self.within(new_len) {
                    continue;
                }
                let (targets, edges) = self.csr.neighbor_slices(head.target);
                for (&t, &e) in targets.iter().zip(edges) {
                    let admissible =
                        head.target != s && (t == s || !self.arena.chain_targets_contain(pid, t));
                    if !admissible {
                        continue;
                    }
                    if self.seen.contains(t) && new_len > self.dist[t.index()] {
                        continue;
                    }
                    if self.seen.insert(t) {
                        self.dist[t.index()] = new_len;
                    }
                    self.budget.claim(1)?;
                    next.push(self.arena.push(pid, e, t, new_len as u32));
                }
            }
            all.extend(cur);
            cur = next;
        }
        for id in all {
            let step = *self.arena.step(id);
            if self.seen.contains(step.target)
                && self.dist[step.target.index()] == step.len as usize
            {
                self.pending.push_back(id);
                self.src_emitted += 1;
            }
        }
        Ok(())
    }

    /// The reachability summary of `source` within the length bound: a BFS
    /// over the CSR nodes (polynomial, independent of how many *paths*
    /// exist). Sound and complete for group discovery under every semantics:
    /// the shortest walk to any reachable target is a simple path, so it is
    /// admitted by Walk, Trail, Acyclic (open targets), Simple and Shortest
    /// alike, and no admitted path can reach a node the walk BFS cannot.
    pub fn reachability(&mut self, source: NodeId) -> ReachInfo {
        let bound = self.config.max_length.unwrap_or(usize::MAX);
        self.reach_seen.reset();
        self.reach_seen.insert(source);
        self.reach_dist[source.index()] = 0;
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let d = self.reach_dist[u.index()];
            if d >= bound {
                continue;
            }
            let (targets, _) = self.csr.neighbor_slices(u);
            for &t in targets {
                if self.reach_seen.insert(t) {
                    self.reach_dist[t.index()] = d + 1;
                    queue.push_back(t);
                }
            }
        }
        let open: Vec<NodeId> = self
            .reach_seen
            .members()
            .iter()
            .copied()
            .filter(|&t| t != source)
            .collect();
        if self.preds.is_none() {
            let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); self.csr.node_count()];
            for i in 0..self.csr.node_count() {
                let u = NodeId(i as u32);
                let (targets, _) = self.csr.neighbor_slices(u);
                for &t in targets {
                    preds[t.index()].push(u);
                }
            }
            self.preds = Some(preds);
        }
        let preds = self.preds.as_ref().expect("built above");
        let min_closed = preds[source.index()]
            .iter()
            .filter(|&&u| self.reach_seen.contains(u))
            .map(|&u| self.reach_dist[u.index()] + 1)
            .min()
            .filter(|&l| l <= bound);
        ReachInfo { open, min_closed }
    }
}
