//! Lazy, endpoint-keyed join expansion: `ϕ(σℓ1(E) ⋈ … ⋈ σℓk(E))` as a
//! composite product.
//!
//! The base relation of patterns like `(:Likes/:Has_creator)+` is a *join* of
//! label scans: every base path is a fixed-length **segment** walking one
//! edge of each hop label in order. The materialised pipeline evaluates this
//! by hashing the full join result and feeding it to the frontier engine;
//! this module instead keeps one CSR-shaped endpoint index *per side* (the
//! label-restricted [`CsrGraph`] snapshots, keyed by each hop's source node)
//! and expands the concatenation lazily: a segment is enumerated by chaining
//! through the per-hop indexes, and the closure is grown segment by segment
//! exactly like [`crate::csr::CsrExpansion`] grows it edge by edge — without
//! either join side, the join result, or the closure ever being materialised.
//!
//! The emission order is byte-identical to the engine's materialised
//! evaluation (`join(…)` then `phi_frontier`): sources ascending, levels (=
//! segment counts) in order, and within a level the lexicographic
//! `(e1, …, ek)` adjacency order — which is the order the hash join feeds the
//! frontier's per-source base index. All admission predicates, the Shortest
//! per-target pruning, the unbounded-Walk infinite-answer detection and the
//! `max_paths` accounting mirror `phi_frontier`'s composite-base expansion
//! step for step (pinned in `tests/cross_validation.rs`).
//!
//! Like the CSR expansion, levels are synchronous — every boundary step in
//! the current level closes a chain of `cur_len` edges — so lengths are
//! threaded beside step ids instead of stored per step, and all per-level
//! scratch (the `cur`/`next` candidate buffers and the per-parent segment
//! boundary buffer) is owned by the expansion and recycled; the steady-state
//! drain performs no heap allocation once the buffers have grown.

use crate::arena::StepArena;
use crate::csr::ReachInfo;
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::ops::recursive::{
    PathSemantics, RecursionConfig, UNBOUNDED_WALK_ITERATION_LIMIT,
};
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::frontier::Frontier;
use pathalg_graph::ids::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// The lazy join expander (see the module docs). Arena steps hold one edge
/// each; only steps at segment boundaries (path length a multiple of the hop
/// count) are ever emitted.
pub(crate) struct JoinExpansion {
    hops: Arc<[CsrGraph]>,
    semantics: PathSemantics,
    config: RecursionConfig,
    walk_unbounded: bool,
    sources: Vec<NodeId>,
    next_source: usize,
    pub(crate) arena: StepArena,
    /// Per-step "chain is acyclic so far" flags, maintained only under
    /// unbounded Walk (a non-acyclic candidate proves the fixpoint is
    /// infinite). In lockstep with the arena.
    acyclic: Vec<bool>,
    /// Segment-boundary steps of the current level (`cur_len` edges each).
    cur: Vec<u32>,
    /// Recycled buffer for the next level (swapped with `cur` per level).
    next_buf: Vec<u32>,
    cur_len: u32,
    cur_source: NodeId,
    iterations: usize,
    src_emitted: usize,
    /// Emitted-but-unpulled boundary steps with their path lengths.
    pending: VecDeque<(u32, u32)>,
    /// The `max_paths` accounting — owned by default, shared across batch
    /// workers under parallel enumeration ([`crate::parallel`]). Level-0
    /// segments are recorded (counted, never limit-checked), recursion
    /// candidates are claimed, mirroring the frontier engine.
    budget: Arc<PathBudget>,
    /// Cooperative cancellation, checked once per expansion level.
    cancel: Option<Arc<CancelToken>>,
    level0_segments: usize,
    /// Recycled segment-boundary buffer, refilled per parent step by
    /// [`descend_segment`].
    bounds: Vec<(u32, bool)>,
    /// Shortest scratch: per-source best-known distance per target (the
    /// distance table is only allocated under Shortest) plus the recycled
    /// saturation buffers.
    seen: Frontier,
    dist: Vec<usize>,
    sp_all: Vec<(u32, u32)>,
    sp_cur: Vec<u32>,
    sp_next: Vec<u32>,
    /// Reachability scratch over the `(node, phase)` product space; the
    /// distance table is sized on first use.
    reach_seen: Frontier,
    reach_dist: Vec<usize>,
    /// Times a hoisted scratch buffer was reused instead of allocated.
    scratch_reuse: u64,
}

impl JoinExpansion {
    /// Builds the expander over per-hop CSR snapshots (all over the same
    /// node universe; at least one hop).
    pub fn new(hops: Arc<[CsrGraph]>, semantics: PathSemantics, config: RecursionConfig) -> Self {
        assert!(!hops.is_empty(), "a join expansion needs at least one hop");
        let n = hops[0].node_count();
        let k = hops.len();
        let sources: Vec<NodeId> = (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|&v| hops[0].out_degree(v) > 0)
            .collect();
        Self {
            hops,
            semantics,
            config,
            walk_unbounded: semantics == PathSemantics::Walk && config.max_length.is_none(),
            sources,
            next_source: 0,
            arena: StepArena::default(),
            acyclic: Vec::new(),
            cur: Vec::new(),
            next_buf: Vec::new(),
            cur_len: 0,
            cur_source: NodeId(0),
            iterations: 0,
            src_emitted: 0,
            pending: VecDeque::new(),
            budget: Arc::new(PathBudget::new(config.max_paths)),
            cancel: None,
            level0_segments: 0,
            bounds: Vec::new(),
            seen: Frontier::new(n),
            dist: if semantics == PathSemantics::Shortest {
                vec![0; n]
            } else {
                Vec::new()
            },
            sp_all: Vec::new(),
            sp_cur: Vec::new(),
            sp_next: Vec::new(),
            reach_seen: Frontier::new(n * k),
            reach_dist: Vec::new(),
            scratch_reuse: 0,
        }
    }

    /// The next emitted boundary step, with its source and path length, in
    /// canonical order.
    pub fn next_id(&mut self) -> Result<Option<(u32, NodeId, u32)>, AlgebraError> {
        if !self.ensure_pending()? {
            return Ok(None);
        }
        let (id, len) = self.pending.pop_front().expect("ensure_pending");
        Ok(Some((id, self.cur_source, len)))
    }

    /// Drops everything still queued or expandable for the current source.
    pub fn skip_source(&mut self) {
        self.pending.clear();
        self.cur.clear();
    }

    /// Number of arena steps allocated so far (the generated-work measure).
    pub fn steps_generated(&self) -> usize {
        self.arena.len()
    }

    /// Bytes currently backing the step arena (see `arena_bytes_peak`).
    pub fn arena_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Scratch reuse events: hoisted buffers plus pooled/retained visited
    /// sets (see `scratch_reuse_count`).
    pub fn scratch_reuse(&self) -> u64 {
        self.scratch_reuse + self.seen.reuse_count() + self.reach_seen.reuse_count()
    }

    /// Paths recorded against the (possibly shared) budget so far.
    pub(crate) fn budget_count(&self) -> usize {
        self.budget.count()
    }

    /// Number of base segments (level-0 join results) generated so far — the
    /// part of the join output the expansion actually touched.
    pub fn base_segments(&self) -> usize {
        self.level0_segments
    }

    /// The path semantics this expansion enumerates under.
    pub fn semantics(&self) -> PathSemantics {
        self.semantics
    }

    /// Restricts expansion to sources marked in `keep` (σ-first pushdown).
    /// Must be applied before the first pull.
    pub fn restrict_sources(&mut self, keep: &[bool]) {
        self.sources.retain(|v| keep.get(v.index()) == Some(&true));
    }

    /// The remaining source schedule (the full schedule before any pull).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources[self.next_source..]
    }

    /// Replaces the source schedule (already filtered, ascending). Must be
    /// applied before the first pull.
    pub fn set_sources(&mut self, sources: Vec<NodeId>) {
        self.sources = sources;
        self.next_source = 0;
    }

    /// Replaces the owned `max_paths` budget with a shared one, so several
    /// batch-restricted expansions enforce one global limit. Must be applied
    /// before the first pull.
    pub fn share_budget(&mut self, budget: Arc<PathBudget>) {
        self.budget = budget;
    }

    /// Installs a shared cancellation token, checked at every expansion
    /// level. May be applied at any time; the next level boundary observes it.
    pub fn share_cancel(&mut self, cancel: Arc<CancelToken>) {
        self.cancel = Some(cancel);
    }

    fn check_cancel(&self) -> Result<(), AlgebraError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    fn within(&self, len: usize) -> bool {
        self.config.max_length.is_none_or(|l| len <= l)
    }

    fn ensure_pending(&mut self) -> Result<bool, AlgebraError> {
        loop {
            if !self.pending.is_empty() {
                return Ok(true);
            }
            if !self.cur.is_empty() {
                self.advance_level()?;
                continue;
            }
            let Some(&s) = self.sources.get(self.next_source) else {
                return Ok(false);
            };
            self.next_source += 1;
            self.cur_source = s;
            self.iterations = 0;
            self.src_emitted = 0;
            if self.semantics == PathSemantics::Shortest {
                self.expand_source_shortest(s)?;
            } else {
                self.level0_boundaries(s);
                self.cur_len = self.hops.len() as u32;
                for i in 0..self.bounds.len() {
                    let (id, _) = self.bounds[i];
                    self.cur.push(id);
                    self.pending.push_back((id, self.cur_len));
                    self.src_emitted += 1;
                }
            }
        }
    }

    /// Level 0 of one source: one boundary step per admitted segment, filled
    /// into `self.bounds` in lexicographic hop-adjacency order — exactly the
    /// join output restricted to this source after the frontier's admission
    /// filter. Segments count toward `max_paths` but never trip it (base
    /// paths are admitted unconditionally, like the fixpoint's base
    /// insertion).
    fn level0_boundaries(&mut self, s: NodeId) {
        self.bounds.clear();
        if !self.within(self.hops.len()) {
            return;
        }
        let mut bounds = std::mem::take(&mut self.bounds);
        if bounds.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        descend_segment(
            &self.hops,
            self.semantics,
            s,
            self.walk_unbounded,
            &mut self.arena,
            &mut self.acyclic,
            0,
            None,
            s,
            false,
            &mut bounds,
        );
        self.budget.record(bounds.len());
        self.level0_segments += bounds.len();
        self.bounds = bounds;
    }

    /// One level of expansion for the current source (non-Shortest
    /// semantics), mirroring `phi_frontier`'s composite-base level step. The
    /// `cur`/`next` and boundary buffers are recycled across levels.
    fn advance_level(&mut self) -> Result<(), AlgebraError> {
        self.check_cancel()?;
        self.iterations += 1;
        if self.walk_unbounded && self.iterations > UNBOUNDED_WALK_ITERATION_LIMIT {
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                paths_so_far: self.src_emitted,
            });
        }
        let cur = std::mem::take(&mut self.cur);
        let mut next = std::mem::take(&mut self.next_buf);
        if next.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        next.clear();
        let seg_len = self.hops.len();
        let new_len = self.cur_len as usize + seg_len;
        if self.within(new_len) {
            let mut bounds = std::mem::take(&mut self.bounds);
            for &pid in &cur {
                let head_target = self.arena.target(pid);
                // A closed simple chain cannot be extended.
                if matches!(
                    self.semantics,
                    PathSemantics::Simple | PathSemantics::Shortest
                ) && head_target == self.cur_source
                {
                    continue;
                }
                let p_acyclic = !self.walk_unbounded || self.acyclic[pid as usize];
                bounds.clear();
                descend_segment(
                    &self.hops,
                    self.semantics,
                    self.cur_source,
                    self.walk_unbounded,
                    &mut self.arena,
                    &mut self.acyclic,
                    0,
                    Some(pid),
                    head_target,
                    !p_acyclic,
                    &mut bounds,
                );
                for &(id, repeat) in &bounds {
                    if self.walk_unbounded && repeat {
                        return Err(AlgebraError::RecursionLimitExceeded {
                            bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                            paths_so_far: self.src_emitted + next.len(),
                        });
                    }
                    self.budget.claim(1)?;
                    next.push(id);
                }
            }
            self.bounds = bounds;
        }
        self.src_emitted += next.len();
        self.pending
            .extend(next.iter().map(|&id| (id, new_len as u32)));
        self.cur = next;
        self.next_buf = cur;
        self.cur_len = new_len as u32;
        Ok(())
    }

    /// Shortest semantics saturates per source: the whole source is expanded
    /// eagerly (as `phi_frontier` does) and the minimal boundary steps are
    /// queued in level order after the per-target distance filter. The
    /// saturation buffers (`sp_*`) are recycled across sources.
    fn expand_source_shortest(&mut self, s: NodeId) -> Result<(), AlgebraError> {
        self.seen.reset();
        let mut all = std::mem::take(&mut self.sp_all);
        let mut cur = std::mem::take(&mut self.sp_cur);
        let mut next = std::mem::take(&mut self.sp_next);
        if all.capacity() + cur.capacity() + next.capacity() > 0 {
            self.scratch_reuse += 1;
        }
        all.clear();
        cur.clear();
        next.clear();
        let seg_len = self.hops.len();
        self.level0_boundaries(s);
        let mut cur_len = seg_len as u32;
        for i in 0..self.bounds.len() {
            let (id, _) = self.bounds[i];
            let t = self.arena.target(id);
            if self.seen.insert(t) {
                self.dist[t.index()] = seg_len;
            }
            cur.push(id);
        }
        while !cur.is_empty() {
            self.check_cancel()?;
            next.clear();
            let new_len = cur_len as usize + seg_len;
            if self.within(new_len) {
                let mut bounds = std::mem::take(&mut self.bounds);
                for &pid in &cur {
                    let head_target = self.arena.target(pid);
                    if head_target == s {
                        continue; // closed chains cannot be extended
                    }
                    bounds.clear();
                    descend_segment(
                        &self.hops,
                        self.semantics,
                        s,
                        false,
                        &mut self.arena,
                        &mut self.acyclic,
                        0,
                        Some(pid),
                        head_target,
                        false,
                        &mut bounds,
                    );
                    for &(id, _) in &bounds {
                        let t = self.arena.target(id);
                        if self.seen.contains(t) && new_len > self.dist[t.index()] {
                            continue;
                        }
                        if self.seen.insert(t) {
                            self.dist[t.index()] = new_len;
                        }
                        self.budget.claim(1)?;
                        next.push(id);
                    }
                }
                self.bounds = bounds;
            }
            all.extend(cur.iter().map(|&id| (id, cur_len)));
            std::mem::swap(&mut cur, &mut next);
            cur_len = new_len as u32;
        }
        for &(id, len) in &all {
            let t = self.arena.target(id);
            if self.seen.contains(t) && self.dist[t.index()] == len as usize {
                self.pending.push_back((id, len));
                self.src_emitted += 1;
            }
        }
        self.sp_all = all;
        self.sp_cur = cur;
        self.sp_next = next;
        Ok(())
    }

    /// The reachability summary of `source` within the length bound: a BFS
    /// over the `(node, phase)` product of graph nodes and hop positions —
    /// polynomial, independent of how many paths exist. *Complete* for group
    /// discovery (every admitted path is a composite walk, so its target is
    /// reached at phase 0 within the bound); unlike the single-label case it
    /// can over-approximate — the shortest composite walk may repeat nodes,
    /// so a listed group may hold no admitted path under Trail/Acyclic/
    /// Simple. The sliced evaluation only uses the set to *delay* a source
    /// stop, so over-approximation costs work, never correctness.
    pub fn reachability(&mut self, source: NodeId) -> ReachInfo {
        let k = self.hops.len();
        let bound = self.config.max_length.unwrap_or(usize::MAX);
        let states = self.hops[0].node_count() * k;
        if self.reach_dist.len() < states {
            self.reach_dist.resize(states, 0);
        }
        self.reach_seen.reset();
        let start = source.index() * k;
        self.reach_seen.insert(NodeId(start as u32));
        self.reach_dist[start] = 0;
        let mut min_closed: Option<usize> = None;
        // The members list doubles as the BFS queue: it grows in insertion
        // order, which *is* BFS order over the product states.
        let mut head = 0;
        while head < self.reach_seen.len() {
            let state = self.reach_seen.members()[head].index();
            head += 1;
            let (u, ph) = (NodeId((state / k) as u32), state % k);
            let d = self.reach_dist[state];
            if d >= bound {
                continue;
            }
            let np = (ph + 1) % k;
            let nd = d + 1;
            let (targets, _) = self.hops[ph].neighbor_slices(u);
            for &t in targets {
                if np == 0 && t == source {
                    // A closed composite walk; the start state is never
                    // re-enqueued (everything beyond it is already explored).
                    min_closed = Some(min_closed.map_or(nd, |m| m.min(nd)));
                    continue;
                }
                let si = t.index() * k + np;
                if self.reach_seen.insert(NodeId(si as u32)) {
                    self.reach_dist[si] = nd;
                }
            }
        }
        let open: Vec<NodeId> = self
            .reach_seen
            .members()
            .iter()
            .filter(|m| m.index() % k == 0)
            .map(|m| NodeId((m.index() / k) as u32))
            .filter(|&v| v != source)
            .collect();
        ReachInfo { open, min_closed }
    }
}

/// Recursively enumerates the admitted `hops[hop..]` continuations of the
/// chain `(parent, node)`, pushing one arena step per edge and recording
/// `(boundary step id, chain-has-repeat)` pairs in lexicographic adjacency
/// order. The per-edge checks against the growing chain are exactly the
/// frontier engine's two-stage admission (`admits(q)` on the segment plus
/// `step_admissible(p, q)` against the parent) unrolled edge by edge; the
/// `repeat` flag carries the unbounded-Walk acyclicity tracking.
#[allow(clippy::too_many_arguments)]
fn descend_segment(
    hops: &[CsrGraph],
    semantics: PathSemantics,
    source: NodeId,
    walk_unbounded: bool,
    arena: &mut StepArena,
    acyclic: &mut Vec<bool>,
    hop: usize,
    chain: Option<u32>,
    node: NodeId,
    repeat: bool,
    out: &mut Vec<(u32, bool)>,
) {
    let last_hop = hop + 1 == hops.len();
    let (targets, edges) = hops[hop].neighbor_slices(node);
    for (&t, &e) in targets.iter().zip(edges) {
        let admissible = match semantics {
            PathSemantics::Walk => true,
            PathSemantics::Trail => chain.is_none_or(|id| !arena.chain_contains_edge(id, e)),
            PathSemantics::Acyclic => {
                t != source && chain.is_none_or(|id| !arena.chain_targets_contain(id, t))
            }
            PathSemantics::Simple | PathSemantics::Shortest => {
                let fresh = chain.is_none_or(|id| !arena.chain_targets_contain(id, t));
                if last_hop {
                    // Only the segment's final node may close the path.
                    t == source || fresh
                } else {
                    t != source && fresh
                }
            }
        };
        if !admissible {
            continue;
        }
        let new_repeat = walk_unbounded
            && (repeat
                || t == source
                || chain.is_some_and(|id| arena.chain_targets_contain(id, t)));
        let id = arena.push(chain, e, t);
        if walk_unbounded {
            acyclic.push(!new_repeat);
        }
        if last_hop {
            out.push((id, new_repeat));
        } else {
            descend_segment(
                hops,
                semantics,
                source,
                walk_unbounded,
                arena,
                acyclic,
                hop + 1,
                Some(id),
                t,
                new_repeat,
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_graph::fixtures::figure1::Figure1;

    #[test]
    fn level0_segments_match_the_two_hop_join_of_figure1() {
        // Likes ⋈ Has_creator on Figure 1 has 4 two-hop paths.
        let f = Figure1::new();
        let hops = vec![
            CsrGraph::with_label(&f.graph, "Likes"),
            CsrGraph::with_label(&f.graph, "Has_creator"),
        ];
        let mut exp = JoinExpansion::new(
            hops.into(),
            PathSemantics::Trail,
            RecursionConfig::default(),
        );
        let mut emitted = 0;
        while let Some((id, source, len)) = exp.next_id().unwrap() {
            let path = exp.arena.path_of(id, source, len as usize);
            assert_eq!(path.nodes()[0], source);
            assert_eq!(len % 2, 0, "only segment boundaries are emitted");
            emitted += 1;
            if emitted > 100 {
                break;
            }
        }
        assert!(emitted >= 4, "at least the 4 base segments are emitted");
        assert!(exp.base_segments() >= 4);
    }

    #[test]
    fn source_restriction_skips_whole_sources() {
        let f = Figure1::new();
        let hops = vec![
            CsrGraph::with_label(&f.graph, "Likes"),
            CsrGraph::with_label(&f.graph, "Has_creator"),
        ];
        let mut exp = JoinExpansion::new(
            hops.into(),
            PathSemantics::Trail,
            RecursionConfig::default(),
        );
        let keep = vec![false; f.graph.node_count()];
        exp.restrict_sources(&keep);
        assert!(exp.next_id().unwrap().is_none());
        assert_eq!(exp.steps_generated(), 0);
    }
}
