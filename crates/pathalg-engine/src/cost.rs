//! A simple cardinality and cost model for algebra plans.
//!
//! Section 7.3 argues that the whole point of an algebra is to enable
//! cost-based optimization. This module provides the minimal ingredient: a
//! bottom-up cardinality estimator over [`GraphStats`] plus a cost function
//! that charges each operator for the paths it is expected to touch. The
//! numbers are deliberately coarse (textbook selectivity heuristics), but they
//! are already enough to rank the Figure 6 plans correctly — which is what the
//! `fig6_pushdown` bench demonstrates.

use crate::exec::ExecutionConfig;
use pathalg_core::condition::{Accessor, Condition, Position};
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::projection::Take;
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_graph::stats::GraphStats;

/// Default selectivity of a property-equality predicate when nothing better is
/// known (the classic 1/10 heuristic).
const DEFAULT_PROPERTY_SELECTIVITY: f64 = 0.1;

/// Expected number of expansion levels charged to a recursive operator when
/// the expansion factor is at least one (bounded by graph size in reality; we
/// charge a fixed horizon to keep the model simple and monotone).
const RECURSION_HORIZON: f64 = 8.0;

/// The estimated cardinality (number of paths) and cumulative cost of a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of output paths.
    pub cardinality: f64,
    /// Estimated total work (paths touched across all operators).
    pub cost: f64,
}

/// Estimates the cardinality and cost of a plan against graph statistics.
pub fn estimate(plan: &PlanExpr, stats: &GraphStats) -> CostEstimate {
    match plan {
        PlanExpr::Nodes => leaf(stats.node_count() as f64),
        PlanExpr::Edges => leaf(stats.edge_count() as f64),
        PlanExpr::Selection { condition, input } => {
            let child = estimate(input, stats);
            let selectivity = condition_selectivity(condition, stats);
            CostEstimate {
                cardinality: child.cardinality * selectivity,
                cost: child.cost + child.cardinality,
            }
        }
        PlanExpr::Join { left, right } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            // Paths join on a single endpoint: expected matches per left path
            // is |right| / #nodes.
            let nodes = stats.node_count().max(1) as f64;
            let cardinality = (l.cardinality * r.cardinality / nodes).max(0.0);
            CostEstimate {
                cardinality,
                cost: l.cost + r.cost + l.cardinality + r.cardinality + cardinality,
            }
        }
        PlanExpr::Union { left, right } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            CostEstimate {
                cardinality: l.cardinality + r.cardinality,
                cost: l.cost + r.cost + l.cardinality + r.cardinality,
            }
        }
        PlanExpr::Recursive { semantics, input } => {
            let child = estimate(input, stats);
            let nodes = stats.node_count().max(1) as f64;
            // Expansion factor of one self-join round, capped by how fast
            // the semantics lets the closure actually grow.
            let expansion = (child.cardinality / nodes).max(0.0);
            let growth = semantics_growth_cap(*semantics, expansion);
            let cardinality = if growth <= 1.0 {
                child.cardinality * RECURSION_HORIZON.min(1.0 / (1.0 - growth + 1e-9)).max(1.0)
            } else {
                child.cardinality * growth.powf(RECURSION_HORIZON)
            };
            CostEstimate {
                cardinality,
                cost: child.cost + cardinality,
            }
        }
        PlanExpr::GroupBy { input, .. } | PlanExpr::OrderBy { input, .. } => {
            let child = estimate(input, stats);
            CostEstimate {
                cardinality: child.cardinality,
                cost: child.cost + child.cardinality,
            }
        }
        PlanExpr::Projection { spec, input } => {
            let child = estimate(input, stats);
            let keep = |take: Take| match take {
                Take::All => 1.0,
                Take::Count(_) => 0.5,
            };
            let fraction = keep(spec.partitions) * keep(spec.groups) * keep(spec.paths);
            CostEstimate {
                cardinality: child.cardinality * fraction,
                cost: child.cost + child.cardinality,
            }
        }
    }
}

fn leaf(cardinality: f64) -> CostEstimate {
    CostEstimate {
        cardinality,
        cost: cardinality,
    }
}

/// The physical implementations of ϕ the engine can dispatch a `Recursive`
/// node to (see [`crate::physical`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhiImpl {
    /// The semi-naïve fixpoint — lowest setup cost, best for tiny bases.
    Seminaive,
    /// The parallel per-source frontier engine
    /// ([`crate::physical::frontier::phi_frontier`]).
    Frontier,
    /// The BFS specialised to Shortest semantics
    /// ([`crate::physical::phi_bfs_shortest`]).
    BfsShortest,
    /// The lazy compact path-multiset representation (`pathalg-pmr`):
    /// chosen when a plan's root is a slicing π pipeline over a recursive
    /// label scan or label-scan join chain ([`choose_pipeline_impl`]), or
    /// for a root-level serial ϕ over such a chain
    /// ([`choose_scan_phi_impl`]) where the PMR's prefix-sharing arena
    /// replaces join materialisation and per-path storage.
    PmrLazy,
}

impl PhiImpl {
    /// Short display name used by `EXPLAIN` strategy lines and the `repro
    /// joins` decision table.
    pub fn name(&self) -> &'static str {
        match self {
            PhiImpl::Seminaive => "seminaive",
            PhiImpl::Frontier => "frontier",
            PhiImpl::BfsShortest => "bfs-shortest",
            PhiImpl::PmrLazy => "pmr-lazy",
        }
    }
}

/// A stats-driven estimate of one recursive closure, the input of the
/// adaptive strategy choice ([`choose_phi_impl`], [`choose_pipeline_impl`]).
/// The numbers are coarse on purpose — they only ever change *which* of the
/// result-identical physical implementations runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosureEstimate {
    /// Estimated cardinality of the base relation (segments for a join
    /// chain).
    pub base: f64,
    /// Estimated fan-out of one expansion step (one segment appended).
    pub expansion: f64,
    /// Whether the base's subgraph can cycle — the signal separating
    /// saturating closures from exponential blow-ups. For multi-label chains
    /// this falls back to whole-graph cyclicity (a sound over-approximation:
    /// it can only make the model more cautious).
    pub cyclic: bool,
    /// The expansion horizon charged (levels).
    pub levels: f64,
    /// Estimated closure cardinality.
    pub paths: f64,
}

impl ClosureEstimate {
    /// True when the model predicts a super-linear closure: a cyclic base
    /// subgraph whose per-step fan-out exceeds one keeps discovering new
    /// paths at every level instead of saturating.
    pub fn blows_up(&self) -> bool {
        self.cyclic && self.expansion > 1.0
    }
}

impl std::fmt::Display for ClosureEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "base≈{:.1} expansion≈{:.2} {} closure≈{:.0}",
            self.base,
            self.expansion,
            if self.cyclic { "cyclic" } else { "acyclic" },
            self.paths
        )
    }
}

/// Caps a raw per-step expansion factor by the path semantics: restricted
/// semantics saturate (their admission predicates kill most candidates
/// after a few levels), unrestricted walks compound fully. Shared by the
/// generic cardinality model ([`estimate`]) and the closure estimators.
fn semantics_growth_cap(semantics: PathSemantics, expansion: f64) -> f64 {
    match semantics {
        PathSemantics::Shortest | PathSemantics::Acyclic | PathSemantics::Simple => {
            expansion.min(2.0)
        }
        PathSemantics::Trail => expansion.min(4.0),
        PathSemantics::Walk => expansion,
    }
}

/// Assembles a [`ClosureEstimate`] from its raw ingredients: a cyclic base
/// with super-unit capped growth compounds geometrically over the horizon;
/// anything else dies out and is charged the (capped) geometric sum.
fn closure_estimate_from(
    base: f64,
    expansion: f64,
    cyclic: bool,
    semantics: PathSemantics,
    levels: f64,
) -> ClosureEstimate {
    let growth = semantics_growth_cap(semantics, expansion);
    let paths = if cyclic && growth > 1.0 {
        base * growth.powf(levels)
    } else {
        base * levels.min(1.0 / (1.0 - growth.min(1.0) + 1e-9)).max(1.0)
    };
    ClosureEstimate {
        base,
        expansion,
        cyclic,
        levels,
        paths,
    }
}

/// The expansion horizon charged to a closure estimate: the recursion bound
/// expressed in `seg_len`-edge levels when one is set, capped by the fixed
/// [`RECURSION_HORIZON`].
fn closure_levels(recursion: &pathalg_core::ops::recursive::RecursionConfig, seg_len: f64) -> f64 {
    recursion
        .max_length
        .map(|l| (l as f64 / seg_len).floor().max(1.0))
        .unwrap_or(RECURSION_HORIZON)
        .min(RECURSION_HORIZON)
}

/// The expected fan-out of a `to`-labelled hop taken at the end of a
/// `from`-labelled hop: the degree-distribution-aware pair factor
/// ([`GraphStats::pair_expansion`], which weights hubs by in-degree) when
/// pair statistics exist, the source-mean [`GraphStats::label_expansion`]
/// otherwise.
fn hop_expansion(stats: &GraphStats, from: &str, to: &str) -> f64 {
    stats
        .pair_expansion(from, to)
        .unwrap_or_else(|| stats.label_expansion(to))
}

/// Estimates the closure of `ϕ_semantics` over a base described by `labels`
/// (a label scan for one entry, a join chain for several) from graph
/// statistics: degree-distribution-aware per-hop expansion factors multiply
/// into the segment fan-out (each hop conditioned on the label of the hop
/// before it, wrapping around for the repeated segment), composite
/// cyclicity ([`GraphStats::chain_cyclic`] — exact for one- and two-label
/// chains) decides whether growth compounds, and the recursion bound caps
/// the horizon.
pub fn estimate_closure(
    stats: &GraphStats,
    labels: &[&str],
    semantics: PathSemantics,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
) -> ClosureEstimate {
    let seg_len = labels.len().max(1) as f64;
    let base = labels
        .split_first()
        .map(|(first, rest)| {
            let mut n = stats.edges_with_label(first) as f64;
            let mut prev = *first;
            for l in rest {
                n *= hop_expansion(stats, prev, l);
                prev = l;
            }
            n
        })
        .unwrap_or(0.0);
    // One appended segment multiplies the fan-out by every hop in turn; the
    // first hop of the new segment is conditioned on the last hop of the
    // previous one (the wrap-around of the repeated chain).
    let expansion: f64 = labels
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let prev = labels[(i + labels.len() - 1) % labels.len()];
            hop_expansion(stats, prev, l)
        })
        .product();
    let cyclic = stats.chain_cyclic(labels);
    let levels = closure_levels(recursion, seg_len);
    closure_estimate_from(base, expansion, cyclic, semantics, levels)
}

/// Estimates the closure of an arbitrary ϕ node: label-chain bases use the
/// per-label statistics ([`estimate_closure`]); anything else falls back to
/// the generic cardinality model with whole-graph cyclicity.
pub fn estimate_phi(
    stats: &GraphStats,
    semantics: PathSemantics,
    base_plan: &PlanExpr,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
) -> ClosureEstimate {
    if let Some(chain) = base_plan.label_scan_chain() {
        return estimate_closure(stats, &chain, semantics, recursion);
    }
    let base = estimate(base_plan, stats).cardinality;
    let nodes = stats.node_count().max(1) as f64;
    let levels = closure_levels(recursion, 1.0);
    closure_estimate_from(base, base / nodes, stats.is_cyclic(), semantics, levels)
}

/// Estimates every recursive closure of a plan: walks the tree and returns
/// one `(operator rendering, estimate)` pair per ϕ node, outermost first.
/// This is the admission-control view of the cost model — a serving layer
/// calls it *before* evaluation starts, so a query whose closure is
/// predicted to blow up past the service's ceiling can be rejected with a
/// typed error instead of aborting mid-enumeration ([`estimate_phi`] is the
/// per-node estimator; the blow-up predicate is
/// [`ClosureEstimate::blows_up`]).
pub fn estimate_plan_closures(
    plan: &PlanExpr,
    stats: &GraphStats,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
) -> Vec<(String, ClosureEstimate)> {
    let mut out = Vec::new();
    collect_plan_closures(plan, stats, recursion, &mut out);
    out
}

fn collect_plan_closures(
    plan: &PlanExpr,
    stats: &GraphStats,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
    out: &mut Vec<(String, ClosureEstimate)>,
) {
    match plan {
        PlanExpr::Nodes | PlanExpr::Edges => {}
        PlanExpr::Selection { input, .. }
        | PlanExpr::GroupBy { input, .. }
        | PlanExpr::OrderBy { input, .. }
        | PlanExpr::Projection { input, .. } => collect_plan_closures(input, stats, recursion, out),
        PlanExpr::Join { left, right } | PlanExpr::Union { left, right } => {
            collect_plan_closures(left, stats, recursion, out);
            collect_plan_closures(right, stats, recursion, out);
        }
        PlanExpr::Recursive { semantics, input } => {
            out.push((
                plan.to_string(),
                estimate_phi(stats, *semantics, input, recursion),
            ));
            collect_plan_closures(input, stats, recursion, out);
        }
    }
}

/// With graph statistics available, a closure estimated below this many
/// paths stays on the semi-naïve fixpoint even when the base exceeds
/// [`ExecutionConfig::frontier_min_base`]: the whole evaluation is cheaper
/// than the frontier's per-source index construction.
pub const SEMINAIVE_MAX_ESTIMATED_CLOSURE: f64 = 128.0;

/// On a multi-threaded configuration, a sliced pipeline whose closure is
/// estimated below this many paths is materialised through the parallel
/// frontier instead of the (serial) lazy PMR: with nothing to cut, the
/// extra workers win.
pub const PARALLEL_MATERIALIZE_MAX_CLOSURE: f64 = 512.0;

/// Picks the physical implementation for one ϕ node.
///
/// Called by the engine evaluator *after* the base relation is materialised,
/// so the decision uses the exact base cardinality; when graph statistics
/// are available ([`crate::exec::EngineEvaluator::with_graph_stats`]) the
/// static base-size thresholds are replaced by the closure estimate — a
/// predicted blow-up inflates `estimate.paths` past
/// [`SEMINAIVE_MAX_ESTIMATED_CLOSURE`] and goes to the frontier engine even
/// for tiny bases (where the static threshold would keep the fixpoint), and
/// a predicted-tiny closure stays on the fixpoint even for larger bases.
/// Any multi-threaded configuration forces the frontier engine — it is the
/// only implementation that can use the extra threads, and its
/// deterministic merge keeps results order-stable. All choices produce the
/// same path set (cross-validated in `tests/cross_validation.rs`), so this
/// function only ever affects performance.
pub fn choose_phi_impl(
    semantics: PathSemantics,
    base_paths: usize,
    exec: &ExecutionConfig,
    estimate: Option<&ClosureEstimate>,
) -> PhiImpl {
    if exec.threads > 1 {
        return PhiImpl::Frontier;
    }
    match estimate {
        Some(est) => {
            if est.paths <= SEMINAIVE_MAX_ESTIMATED_CLOSURE {
                return PhiImpl::Seminaive;
            }
        }
        None => {
            if base_paths < exec.frontier_min_base {
                return PhiImpl::Seminaive;
            }
        }
    }
    if semantics == PathSemantics::Shortest && base_paths <= exec.bfs_shortest_max_base {
        return PhiImpl::BfsShortest;
    }
    PhiImpl::Frontier
}

/// A non-root join chain whose closure is estimated above this many paths
/// is dispatched to the lazy arena join even though its parent needs the
/// materialised set: skipping the hash join and per-path storage during the
/// expansion dominates once the closure (or the joined base) is
/// substantial.
pub const CHAIN_LAZY_MIN_ESTIMATED_CLOSURE: f64 = 256.0;

/// Picks the physical implementation for a `ϕ` node over a label scan or a
/// join chain of label scans (`chain_len` hops), which never materialises
/// its base relation.
///
/// A *root-level* multi-hop chain goes to the lazy arena join
/// ([`PhiImpl::PmrLazy`]) at **any** thread count — the expansion skips the
/// hash join and the base `PathSet` entirely, and multi-threaded
/// configurations run it through the per-source batch scheduler
/// (`pathalg_pmr::parallel`) with a byte-identical merged order. A
/// *non-root* chain consults the closure estimate: a predicted-substantial
/// closure ([`CHAIN_LAZY_MIN_ESTIMATED_CLOSURE`]) or a predicted blow-up
/// also takes the arena join (its output feeds the parent materialised
/// either way); small closures keep the frontier, whose setup is cheaper.
/// Root-level *serial* ϕShortest single scans keep the §8 rule (the
/// prefix-sharing arena replaces per-path materialisation during the
/// saturating BFS). Unbounded Walk stays on the materialising path so the
/// infinite-answer error surfaces exactly as the reference reports it. All
/// choices produce byte-identical output sequences.
pub fn choose_scan_phi_impl(
    semantics: PathSemantics,
    exec: &ExecutionConfig,
    at_root: bool,
    chain_len: usize,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
    estimate: Option<&ClosureEstimate>,
) -> PhiImpl {
    let walk_unbounded = semantics == PathSemantics::Walk && recursion.max_length.is_none();
    if walk_unbounded {
        return PhiImpl::Frontier;
    }
    if chain_len >= 2 {
        if at_root {
            return PhiImpl::PmrLazy;
        }
        if estimate
            .is_some_and(|est| est.blows_up() || est.paths >= CHAIN_LAZY_MIN_ESTIMATED_CLOSURE)
        {
            return PhiImpl::PmrLazy;
        }
        return PhiImpl::Frontier;
    }
    if at_root && exec.threads <= 1 && semantics == PathSemantics::Shortest {
        return PhiImpl::PmrLazy;
    }
    PhiImpl::Frontier
}

/// Recognises a whole plan whose root is a *slicing* γ/τ/π pipeline over a
/// recursive label scan or label-scan join chain (optionally with an
/// endpoint σ between γ and ϕ) — the shapes where lazy top-k enumeration
/// ([`PhiImpl::PmrLazy`]) turns a worst-case-exponential evaluation into an
/// output-linear one — and returns the recognised
/// [`pathalg_core::slice::SlicePlan`] so the
/// evaluator need not re-derive it. Returns `None` when the plan must be
/// evaluated by materialising (not sliceable, base not a scan chain, a
/// non-endpoint filter, or an unbounded Walk, whose infinite-answer
/// detection requires driving the expansion — see
/// [`pathalg_core::slice::SlicePlan::lazy_eligible`]).
pub fn choose_pipeline_impl<'a>(
    plan: &'a pathalg_core::expr::PlanExpr,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
) -> Option<pathalg_core::slice::SlicePlan<'a>> {
    plan.sliceable_pipeline()
        .filter(|sliced| sliced.lazy_eligible(recursion))
}

/// How a lazily evaluated sliced pipeline is scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LazyMode {
    /// One serial enumeration ([`pathalg_pmr::Pmr::sliced`]).
    Serial,
    /// Per-source batch scheduling over the configured worker threads
    /// (`pathalg_pmr::parallel`), byte-identical to the serial order.
    Parallel,
}

/// The adaptive variant of [`choose_pipeline_impl`] — per node it picks one
/// of **three** strategies instead of hard-falling-back:
///
/// * *parallel frontier* (returns `None`): a multi-threaded configuration
///   whose closure is estimated tiny ([`PARALLEL_MATERIALIZE_MAX_CLOSURE`])
///   and non-exploding — with nothing to cut, materialising on all workers
///   wins;
/// * *parallel lazy* ([`LazyMode::Parallel`]): every other multi-threaded
///   case without a `max_paths` bound — the batch scheduler keeps the lazy
///   cut **and** the workers;
/// * *serial lazy* ([`LazyMode::Serial`]): single-threaded configurations —
///   and `max_paths`-bounded runs of *cross-source-coupled* specs (a
///   partition limit, or the γ∅ global cap). Those limits make the serial
///   enumeration stop mid-schedule, so parallel workers would claim budget
///   for sources the serial run never expands; uncoupled specs expand every
///   source identically on either schedule, so their shared-budget claim
///   accounting matches the serial outcome exactly and they stay parallel.
///
/// The returned estimate (when stats were available) feeds the `EXPLAIN`
/// strategy report and seeds the per-source batch weights.
#[allow(clippy::type_complexity)]
pub fn choose_pipeline_strategy<'a>(
    plan: &'a pathalg_core::expr::PlanExpr,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
    exec: &ExecutionConfig,
    stats: Option<&GraphStats>,
) -> Option<(
    pathalg_core::slice::SlicePlan<'a>,
    Option<ClosureEstimate>,
    LazyMode,
)> {
    let sliced = choose_pipeline_impl(plan, recursion)?;
    let estimate = stats.map(|s| {
        let chain = sliced
            .base
            .label_scan_chain()
            .expect("lazy_eligible checked the base is a scan chain");
        estimate_closure(s, &chain, sliced.semantics, recursion)
    });
    if exec.threads > 1 {
        if let Some(est) = &estimate {
            if !est.blows_up() && est.paths <= PARALLEL_MATERIALIZE_MAX_CLOSURE {
                return None;
            }
        }
        let claim_coupled = sliced.spec.max_partitions.is_some()
            || sliced.spec.group_key == pathalg_core::ops::group_by::GroupKey::Empty;
        if recursion.max_paths.is_none() || !claim_coupled {
            return Some((sliced, estimate, LazyMode::Parallel));
        }
    }
    Some((sliced, estimate, LazyMode::Serial))
}

/// Estimated fraction of paths satisfying a condition.
pub fn condition_selectivity(condition: &Condition, stats: &GraphStats) -> f64 {
    match condition {
        Condition::True => 1.0,
        Condition::And(a, b) => condition_selectivity(a, stats) * condition_selectivity(b, stats),
        Condition::Or(a, b) => {
            let sa = condition_selectivity(a, stats);
            let sb = condition_selectivity(b, stats);
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
        Condition::Not(c) => 1.0 - condition_selectivity(c, stats),
        Condition::Bound(_) => 0.9,
        Condition::Substr(_, _) => 0.25,
        // Whole-path restrictor predicates: most short paths satisfy them.
        Condition::IsTrail | Condition::IsAcyclic | Condition::IsSimple => 0.8,
        Condition::Compare {
            accessor,
            op,
            value,
        } => {
            use pathalg_core::condition::CompareOp::*;
            let equality = match accessor {
                Accessor::EdgeLabel(_) => value
                    .as_str()
                    .map(|l| stats.edge_label_selectivity(l))
                    .unwrap_or(DEFAULT_PROPERTY_SELECTIVITY),
                Accessor::NodeLabel(_) => value
                    .as_str()
                    .map(|l| {
                        let total = stats.node_count().max(1) as f64;
                        stats.nodes_with_label(l) as f64 / total
                    })
                    .unwrap_or(DEFAULT_PROPERTY_SELECTIVITY),
                Accessor::NodeProperty(Position::First, _)
                | Accessor::NodeProperty(Position::Last, _)
                | Accessor::NodeProperty(Position::Index(_), _)
                | Accessor::EdgeProperty(_, _) => DEFAULT_PROPERTY_SELECTIVITY,
                Accessor::Len => 0.2,
            };
            match op {
                Eq => equality,
                Ne => 1.0 - equality,
                Lt | Le | Gt | Ge => 0.33,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::projection::ProjectionSpec;
    use pathalg_core::ops::recursive::RecursionConfig;
    use pathalg_core::GroupKey;
    use pathalg_graph::fixtures::figure1::figure1_graph;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    fn stats() -> GraphStats {
        GraphStats::compute(&figure1_graph())
    }

    fn knows_scan() -> PlanExpr {
        PlanExpr::edges().select(Condition::edge_label(1, "Knows"))
    }

    #[test]
    fn leaves_estimate_exact_counts() {
        let s = stats();
        assert_eq!(estimate(&PlanExpr::nodes(), &s).cardinality, 7.0);
        assert_eq!(estimate(&PlanExpr::edges(), &s).cardinality, 11.0);
    }

    #[test]
    fn label_selection_uses_real_selectivity() {
        let s = stats();
        let est = estimate(&knows_scan(), &s);
        // 4 of 11 edges are Knows.
        assert!((est.cardinality - 4.0).abs() < 1e-6);
        assert!(est.cost > est.cardinality);
    }

    #[test]
    fn condition_selectivities_are_sane() {
        let s = stats();
        assert!(
            (condition_selectivity(&Condition::edge_label(1, "Knows"), &s) - 4.0 / 11.0).abs()
                < 1e-9
        );
        assert_eq!(condition_selectivity(&Condition::True, &s), 1.0);
        let and = Condition::edge_label(1, "Knows").and(Condition::first_property("name", "Moe"));
        assert!(condition_selectivity(&and, &s) < 4.0 / 11.0);
        let or = Condition::edge_label(1, "Knows").or(Condition::edge_label(1, "Likes"));
        let sel_or = condition_selectivity(&or, &s);
        assert!(sel_or > 4.0 / 11.0 && sel_or <= 1.0);
        let not = Condition::edge_label(1, "Knows").not();
        assert!((condition_selectivity(&not, &s) - (1.0 - 4.0 / 11.0)).abs() < 1e-9);
        assert!(condition_selectivity(&Condition::first_label("Person"), &s) > 0.5);
    }

    #[test]
    fn pushed_down_plans_cost_less() {
        // Figure 6: filtering before the join must be estimated cheaper than
        // filtering after it.
        let s = stats();
        let filter = Condition::first_property("name", "Moe");
        let unpushed = knows_scan().join(knows_scan()).select(filter.clone());
        let pushed = knows_scan().select(filter).join(knows_scan());
        let a = estimate(&unpushed, &s);
        let b = estimate(&pushed, &s);
        assert!(b.cost < a.cost, "pushed {} vs unpushed {}", b.cost, a.cost);
        // Cardinality of the final result is (approximately) the same.
        assert!((a.cardinality - b.cardinality).abs() < 1e-6);
    }

    #[test]
    fn restricted_recursion_is_estimated_cheaper_than_walks() {
        let s = GraphStats::compute(&snb_like_graph(&SnbConfig::scale(50, 4)));
        let base = knows_scan();
        let walk = base.clone().recursive(PathSemantics::Walk);
        let shortest = base.recursive(PathSemantics::Shortest);
        let cw = estimate(&walk, &s);
        let cs = estimate(&shortest, &s);
        assert!(cs.cost <= cw.cost);
    }

    #[test]
    fn phi_impl_choice_covers_all_three_implementations() {
        use PathSemantics::*;
        let serial = ExecutionConfig::default();
        let parallel = ExecutionConfig::with_threads(4);
        // Any parallel configuration forces the frontier engine.
        assert_eq!(
            choose_phi_impl(Trail, 4, &parallel, None),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_phi_impl(Shortest, 4, &parallel, None),
            PhiImpl::Frontier
        );
        // Tiny bases stay on the semi-naïve fixpoint.
        assert_eq!(choose_phi_impl(Trail, 4, &serial, None), PhiImpl::Seminaive);
        assert_eq!(
            choose_phi_impl(Shortest, 4, &serial, None),
            PhiImpl::Seminaive
        );
        // Medium Shortest bases go to the specialised BFS…
        assert_eq!(
            choose_phi_impl(Shortest, 64, &serial, None),
            PhiImpl::BfsShortest
        );
        // …while everything else at scale uses the frontier engine.
        assert_eq!(choose_phi_impl(Trail, 64, &serial, None), PhiImpl::Frontier);
        assert_eq!(
            choose_phi_impl(Shortest, 5000, &serial, None),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_phi_impl(Walk, 5000, &serial, None),
            PhiImpl::Frontier
        );
        // The static thresholds are configuration, not magic numbers.
        let tuned = ExecutionConfig {
            frontier_min_base: 2,
            bfs_shortest_max_base: 3,
            ..ExecutionConfig::default()
        };
        assert_eq!(choose_phi_impl(Trail, 4, &tuned, None), PhiImpl::Frontier);
        assert_eq!(
            choose_phi_impl(Shortest, 64, &tuned, None),
            PhiImpl::Frontier
        );
        assert_eq!(choose_phi_impl(Trail, 1, &tuned, None), PhiImpl::Seminaive);
    }

    #[test]
    fn closure_estimates_separate_blowups_from_saturating_closures() {
        use pathalg_graph::generator::structured::{chain_graph, complete_graph};
        let recursion = RecursionConfig::default();
        // A complete graph's label subgraph is cyclic with fan-out n−1: the
        // model must predict a blow-up for walks/trails.
        let dense = GraphStats::compute(&complete_graph(6, "k"));
        let est = estimate_closure(&dense, &["k"], PathSemantics::Trail, &recursion);
        assert!(est.cyclic);
        assert!(est.expansion > 1.0);
        assert!(est.blows_up());
        assert!(est.paths > est.base);
        // A chain saturates: no cycle, expansion ≤ 1.
        let sparse = GraphStats::compute(&chain_graph(30, "k"));
        let est = estimate_closure(&sparse, &["k"], PathSemantics::Trail, &recursion);
        assert!(!est.cyclic);
        assert!(!est.blows_up());
        // Chains multiply per-hop expansions into the segment fan-out.
        let f = GraphStats::compute(&figure1_graph());
        let est = estimate_closure(
            &f,
            &["Likes", "Has_creator"],
            PathSemantics::Simple,
            &recursion,
        );
        assert!(est.base > 0.0);
        assert!(est.expansion > 0.0);
        // A length bound caps the horizon in segment units.
        let bounded = RecursionConfig::with_max_length(4);
        let est_bounded = estimate_closure(&dense, &["k", "k"], PathSemantics::Walk, &bounded);
        assert!(est_bounded.levels <= 2.0);
    }

    #[test]
    fn stats_driven_choice_overrides_the_static_thresholds() {
        use pathalg_graph::generator::structured::{chain_graph, complete_graph};
        let serial = ExecutionConfig::default();
        let recursion = RecursionConfig::default();
        // Tiny cyclic base that explodes: the estimator sends it to the
        // frontier where the static threshold would have kept the fixpoint.
        let dense = GraphStats::compute(&complete_graph(5, "k"));
        let est = estimate_closure(&dense, &["k"], PathSemantics::Trail, &recursion);
        assert_eq!(
            choose_phi_impl(PathSemantics::Trail, 20, &serial, Some(&est)),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_phi_impl(PathSemantics::Trail, 20, &serial, None),
            PhiImpl::Seminaive
        );
        // Acyclic base whose closure stays tiny: the estimator keeps the
        // fixpoint where the static base threshold (tightened here to make
        // the contrast visible at this scale) would pay for the frontier.
        let tuned = ExecutionConfig {
            frontier_min_base: 4,
            ..ExecutionConfig::default()
        };
        let sparse = GraphStats::compute(&chain_graph(11, "k"));
        let est = estimate_closure(&sparse, &["k"], PathSemantics::Acyclic, &recursion);
        assert!(est.paths <= SEMINAIVE_MAX_ESTIMATED_CLOSURE);
        assert_eq!(
            choose_phi_impl(PathSemantics::Acyclic, 10, &tuned, Some(&est)),
            PhiImpl::Seminaive
        );
        assert_eq!(
            choose_phi_impl(PathSemantics::Acyclic, 10, &tuned, None),
            PhiImpl::Frontier
        );
    }

    #[test]
    fn scan_and_pipeline_choosers_pick_pmr_lazy_where_it_pays() {
        use pathalg_core::ops::projection::{ProjectionSpec, Take};
        use pathalg_core::ops::recursive::RecursionConfig;
        use pathalg_core::GroupKey;

        let serial = ExecutionConfig::default();
        let parallel = ExecutionConfig::with_threads(4);
        let rec = RecursionConfig::default();
        // Root-level serial ϕShortest scans take the PMR…
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &serial, true, 1, &rec, None),
            PhiImpl::PmrLazy
        );
        // …but non-root, parallel, or non-Shortest single scans stay on the
        // frontier.
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &serial, false, 1, &rec, None),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &parallel, true, 1, &rec, None),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, true, 1, &rec, None),
            PhiImpl::Frontier
        );
        // Root-level join chains take the lazy arena join under every
        // bounded semantics — in parallel configurations too, where the
        // enumeration runs through the per-source batch scheduler…
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, true, 2, &rec, None),
            PhiImpl::PmrLazy
        );
        assert_eq!(
            choose_scan_phi_impl(
                PathSemantics::Walk,
                &serial,
                true,
                2,
                &RecursionConfig::with_max_length(4),
                None
            ),
            PhiImpl::PmrLazy
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &parallel, true, 2, &rec, None),
            PhiImpl::PmrLazy
        );
        // …but unbounded Walk keeps the materialising error-detection path.
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Walk, &serial, true, 2, &rec, None),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Walk, &parallel, true, 2, &rec, None),
            PhiImpl::Frontier
        );
        // Non-root chains consult the estimator instead of silently
        // materialising: a predicted-substantial closure takes the arena
        // join, a predicted-tiny one keeps the frontier, and without
        // statistics the static rule stays conservative.
        let big = ClosureEstimate {
            base: 500.0,
            expansion: 2.0,
            cyclic: true,
            levels: 8.0,
            paths: 100_000.0,
        };
        let tiny = ClosureEstimate {
            base: 4.0,
            expansion: 0.5,
            cyclic: false,
            levels: 8.0,
            paths: 8.0,
        };
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, false, 2, &rec, Some(&big)),
            PhiImpl::PmrLazy
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, false, 2, &rec, Some(&tiny)),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, false, 2, &rec, None),
            PhiImpl::Frontier
        );

        let recursion = RecursionConfig::default();
        let sliced = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
        assert!(choose_pipeline_impl(&sliced, &recursion).is_some());
        // π(*,*,*) slices nothing.
        let all = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::all());
        assert!(choose_pipeline_impl(&all, &recursion).is_none());
        // Unbounded Walk must keep the materialised infinite-answer check;
        // with a bound the lazy pipeline applies.
        let walk = knows_scan()
            .recursive(PathSemantics::Walk)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
        assert!(choose_pipeline_impl(&walk, &RecursionConfig::unbounded()).is_none());
        assert!(choose_pipeline_impl(&walk, &RecursionConfig::with_max_length(4)).is_some());
    }

    #[test]
    fn pair_statistics_sharpen_chain_estimates() {
        use pathalg_graph::graph::GraphBuilder;
        use pathalg_graph::value::Value;
        let recursion = RecursionConfig::default();
        // a: u→v, b: v→u — each label subgraph acyclic, the (a/b)+ composite
        // cyclic. Whole-graph cyclicity agrees here; the pair table is what
        // proves it per chain.
        let mut builder = GraphBuilder::new();
        let u = builder.add_node("N", Vec::<(&str, Value)>::new());
        let v = builder.add_node("N", Vec::<(&str, Value)>::new());
        builder.add_edge(u, v, "a", Vec::<(&str, Value)>::new());
        builder.add_edge(v, u, "b", Vec::<(&str, Value)>::new());
        let stats = GraphStats::compute(&builder.build());
        let est = estimate_closure(&stats, &["a", "b"], PathSemantics::Trail, &recursion);
        assert!(est.cyclic, "the composite 2-cycle must be seen");
        // The reverse: a cyclic graph whose (a/b) composite is empty — the
        // whole-graph fallback would call this cyclic, the pair table knows
        // better and the estimate stays saturating.
        let mut builder = GraphBuilder::new();
        let x = builder.add_node("N", Vec::<(&str, Value)>::new());
        let y = builder.add_node("N", Vec::<(&str, Value)>::new());
        let w1 = builder.add_node("N", Vec::<(&str, Value)>::new());
        let w2 = builder.add_node("N", Vec::<(&str, Value)>::new());
        builder.add_edge(x, y, "a", Vec::<(&str, Value)>::new());
        builder.add_edge(x, y, "b", Vec::<(&str, Value)>::new());
        builder.add_edge(w1, w2, "c", Vec::<(&str, Value)>::new());
        builder.add_edge(w2, w1, "c", Vec::<(&str, Value)>::new());
        let stats = GraphStats::compute(&builder.build());
        assert!(stats.is_cyclic());
        let est = estimate_closure(&stats, &["a", "b"], PathSemantics::Walk, &recursion);
        assert!(!est.cyclic, "the empty (a,b) composite cannot cycle");
        assert!(!est.blows_up());
    }

    #[test]
    fn pipeline_strategy_is_three_way() {
        use pathalg_core::ops::projection::Take;
        use pathalg_graph::generator::structured::{chain_graph, complete_graph};

        let plan = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
        let recursion = RecursionConfig::default();
        let serial = ExecutionConfig::default();
        let parallel = ExecutionConfig::with_threads(4);
        // Serial configurations slice serially.
        let (_, _, mode) = choose_pipeline_strategy(&plan, &recursion, &serial, None).unwrap();
        assert_eq!(mode, LazyMode::Serial);
        // Parallel without statistics: lazy, scheduled in batches.
        let (_, _, mode) = choose_pipeline_strategy(&plan, &recursion, &parallel, None).unwrap();
        assert_eq!(mode, LazyMode::Parallel);
        // Parallel + provably tiny closure: hand back to the parallel
        // frontier (the graph is a short Knows chain).
        let sparse = GraphStats::compute(&chain_graph(6, "Knows"));
        assert!(choose_pipeline_strategy(&plan, &recursion, &parallel, Some(&sparse)).is_none());
        // Parallel + predicted blow-up: parallel lazy, with the estimate.
        let dense = GraphStats::compute(&complete_graph(6, "Knows"));
        let (_, est, mode) =
            choose_pipeline_strategy(&plan, &recursion, &parallel, Some(&dense)).unwrap();
        assert_eq!(mode, LazyMode::Parallel);
        assert!(est.unwrap().blows_up());
        // A max_paths bound forces the serial enumeration only for
        // cross-source-coupled specs (partition limit / γ∅), whose serial
        // stop point the parallel claims cannot replay; an uncoupled spec
        // keeps exact claim parity and stays parallel.
        let bounded = RecursionConfig {
            max_length: None,
            max_paths: Some(100),
        };
        let (_, _, mode) =
            choose_pipeline_strategy(&plan, &bounded, &parallel, Some(&dense)).unwrap();
        assert_eq!(mode, LazyMode::Parallel);
        let coupled = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::Source)
            .project(ProjectionSpec::new(
                Take::Count(2),
                Take::All,
                Take::Count(3),
            ));
        let (_, _, mode) =
            choose_pipeline_strategy(&coupled, &bounded, &parallel, Some(&dense)).unwrap();
        assert_eq!(mode, LazyMode::Serial);
        let (_, _, mode) = choose_pipeline_strategy(
            &coupled,
            &RecursionConfig {
                max_length: None,
                max_paths: None,
            },
            &parallel,
            Some(&dense),
        )
        .unwrap();
        assert_eq!(mode, LazyMode::Parallel);
    }

    #[test]
    fn plan_closure_walk_finds_every_phi_node() {
        use pathalg_graph::generator::structured::complete_graph;
        let s = GraphStats::compute(&complete_graph(6, "Knows"));
        let recursion = RecursionConfig::default();
        // No ϕ node: nothing to estimate.
        assert!(estimate_plan_closures(&knows_scan(), &s, &recursion).is_empty());
        // A sliced pipeline over a blow-up closure: one estimate, exploding.
        let pipeline = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::all());
        let ests = estimate_plan_closures(&pipeline, &s, &recursion);
        assert_eq!(ests.len(), 1);
        assert!(ests[0].0.starts_with("ϕ"));
        assert!(ests[0].1.blows_up());
        // A union of two closures reports both.
        let two = knows_scan()
            .recursive(PathSemantics::Trail)
            .union(knows_scan().recursive(PathSemantics::Acyclic));
        assert_eq!(estimate_plan_closures(&two, &s, &recursion).len(), 2);
    }

    #[test]
    fn extended_operators_add_their_input_cost() {
        let s = stats();
        let plan = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::all());
        let est = estimate(&plan, &s);
        assert!(est.cost > 0.0);
        assert!(est.cardinality > 0.0);
        let inner = estimate(&knows_scan().recursive(PathSemantics::Trail), &s);
        assert!(est.cost > inner.cost);
    }
}
