//! A simple cardinality and cost model for algebra plans.
//!
//! Section 7.3 argues that the whole point of an algebra is to enable
//! cost-based optimization. This module provides the minimal ingredient: a
//! bottom-up cardinality estimator over [`GraphStats`] plus a cost function
//! that charges each operator for the paths it is expected to touch. The
//! numbers are deliberately coarse (textbook selectivity heuristics), but they
//! are already enough to rank the Figure 6 plans correctly — which is what the
//! `fig6_pushdown` bench demonstrates.

use crate::exec::ExecutionConfig;
use pathalg_core::condition::{Accessor, Condition, Position};
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::projection::Take;
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_graph::stats::GraphStats;

/// Default selectivity of a property-equality predicate when nothing better is
/// known (the classic 1/10 heuristic).
const DEFAULT_PROPERTY_SELECTIVITY: f64 = 0.1;

/// Expected number of expansion levels charged to a recursive operator when
/// the expansion factor is at least one (bounded by graph size in reality; we
/// charge a fixed horizon to keep the model simple and monotone).
const RECURSION_HORIZON: f64 = 8.0;

/// The estimated cardinality (number of paths) and cumulative cost of a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of output paths.
    pub cardinality: f64,
    /// Estimated total work (paths touched across all operators).
    pub cost: f64,
}

/// Estimates the cardinality and cost of a plan against graph statistics.
pub fn estimate(plan: &PlanExpr, stats: &GraphStats) -> CostEstimate {
    match plan {
        PlanExpr::Nodes => leaf(stats.node_count() as f64),
        PlanExpr::Edges => leaf(stats.edge_count() as f64),
        PlanExpr::Selection { condition, input } => {
            let child = estimate(input, stats);
            let selectivity = condition_selectivity(condition, stats);
            CostEstimate {
                cardinality: child.cardinality * selectivity,
                cost: child.cost + child.cardinality,
            }
        }
        PlanExpr::Join { left, right } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            // Paths join on a single endpoint: expected matches per left path
            // is |right| / #nodes.
            let nodes = stats.node_count().max(1) as f64;
            let cardinality = (l.cardinality * r.cardinality / nodes).max(0.0);
            CostEstimate {
                cardinality,
                cost: l.cost + r.cost + l.cardinality + r.cardinality + cardinality,
            }
        }
        PlanExpr::Union { left, right } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            CostEstimate {
                cardinality: l.cardinality + r.cardinality,
                cost: l.cost + r.cost + l.cardinality + r.cardinality,
            }
        }
        PlanExpr::Recursive { semantics, input } => {
            let child = estimate(input, stats);
            let nodes = stats.node_count().max(1) as f64;
            // Expansion factor of one self-join round.
            let expansion = (child.cardinality / nodes).max(0.0);
            let growth = match semantics {
                // Restricted semantics saturate; unrestricted walks are charged
                // the full horizon.
                PathSemantics::Shortest | PathSemantics::Acyclic | PathSemantics::Simple => {
                    expansion.min(2.0)
                }
                PathSemantics::Trail => expansion.min(4.0),
                PathSemantics::Walk => expansion,
            };
            let cardinality = if growth <= 1.0 {
                child.cardinality * RECURSION_HORIZON.min(1.0 / (1.0 - growth + 1e-9)).max(1.0)
            } else {
                child.cardinality * growth.powf(RECURSION_HORIZON)
            };
            CostEstimate {
                cardinality,
                cost: child.cost + cardinality,
            }
        }
        PlanExpr::GroupBy { input, .. } | PlanExpr::OrderBy { input, .. } => {
            let child = estimate(input, stats);
            CostEstimate {
                cardinality: child.cardinality,
                cost: child.cost + child.cardinality,
            }
        }
        PlanExpr::Projection { spec, input } => {
            let child = estimate(input, stats);
            let keep = |take: Take| match take {
                Take::All => 1.0,
                Take::Count(_) => 0.5,
            };
            let fraction = keep(spec.partitions) * keep(spec.groups) * keep(spec.paths);
            CostEstimate {
                cardinality: child.cardinality * fraction,
                cost: child.cost + child.cardinality,
            }
        }
    }
}

fn leaf(cardinality: f64) -> CostEstimate {
    CostEstimate {
        cardinality,
        cost: cardinality,
    }
}

/// The physical implementations of ϕ the engine can dispatch a `Recursive`
/// node to (see [`crate::physical`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhiImpl {
    /// The semi-naïve fixpoint — lowest setup cost, best for tiny bases.
    Seminaive,
    /// The parallel per-source frontier engine
    /// ([`crate::physical::frontier::phi_frontier`]).
    Frontier,
    /// The BFS specialised to Shortest semantics
    /// ([`crate::physical::phi_bfs_shortest`]).
    BfsShortest,
    /// The lazy compact path-multiset representation (`pathalg-pmr`):
    /// chosen when a plan's root is a slicing π pipeline over a recursive
    /// label scan ([`choose_pipeline_impl`]), or for a root-level ϕShortest
    /// label scan in serial configurations ([`choose_scan_phi_impl`]) where
    /// the PMR's prefix-sharing arena replaces per-path materialisation.
    PmrLazy,
}

/// Below this base size the frontier engine's index construction is not worth
/// its setup cost and the semi-naïve fixpoint wins.
const FRONTIER_MIN_BASE: usize = 24;

/// Up to this base size the single-threaded Shortest BFS, which shares the
/// fixpoint's simple data structures but prunes by endpoint distance, is
/// competitive with the frontier engine; beyond it the frontier's per-source
/// distance tables and clone-free level rotation dominate.
const BFS_SHORTEST_MAX_BASE: usize = 96;

/// Picks the physical implementation for one ϕ node.
///
/// Called by the engine evaluator *after* the base relation is materialised,
/// so the decision uses the exact base cardinality rather than an estimate.
/// Any multi-threaded configuration forces the frontier engine — it is the
/// only implementation that can use the extra threads, and its deterministic
/// merge keeps results order-stable. All three choices produce the same path
/// set (cross-validated in `tests/cross_validation.rs`), so this function
/// only ever affects performance.
pub fn choose_phi_impl(
    semantics: PathSemantics,
    base_paths: usize,
    exec: &ExecutionConfig,
) -> PhiImpl {
    if exec.threads > 1 {
        return PhiImpl::Frontier;
    }
    if base_paths < FRONTIER_MIN_BASE {
        return PhiImpl::Seminaive;
    }
    if semantics == PathSemantics::Shortest && base_paths <= BFS_SHORTEST_MAX_BASE {
        return PhiImpl::BfsShortest;
    }
    PhiImpl::Frontier
}

/// Picks the physical implementation for a `ϕ(σℓ(Edges(G)))` label-scan
/// node, which never materialises its base relation.
///
/// A *root-level* ϕShortest scan in a serial configuration goes to the lazy
/// PMR ([`PhiImpl::PmrLazy`]): its per-source expansion is the same
/// saturating BFS as the CSR frontier engine's, but paths live as
/// prefix-sharing arena steps until emission, so the peak working set is
/// O(#paths) words instead of O(#paths · length). Every other case uses the
/// (possibly parallel) CSR frontier engine — under multi-threaded
/// configurations it is the only implementation that can use the extra
/// workers, and for non-root ϕ nodes the parent operator needs the
/// materialised set anyway. Both produce byte-identical output sequences.
pub fn choose_scan_phi_impl(
    semantics: PathSemantics,
    exec: &ExecutionConfig,
    at_root: bool,
) -> PhiImpl {
    if at_root && semantics == PathSemantics::Shortest && exec.threads <= 1 {
        return PhiImpl::PmrLazy;
    }
    PhiImpl::Frontier
}

/// Recognises a whole plan whose root is a *slicing* γ/τ/π pipeline over a
/// recursive label scan — the shape where lazy top-k enumeration
/// ([`PhiImpl::PmrLazy`]) turns a worst-case-exponential evaluation into an
/// output-linear one — and returns the recognised
/// [`pathalg_core::slice::SlicePlan`] so the
/// evaluator need not re-derive it. Returns `None` when the plan must be
/// evaluated by materialising (not sliceable, base not a label scan, or an
/// unbounded Walk, whose infinite-answer detection requires driving the
/// expansion — see [`pathalg_core::slice::SlicePlan::lazy_eligible`]).
pub fn choose_pipeline_impl<'a>(
    plan: &'a pathalg_core::expr::PlanExpr,
    recursion: &pathalg_core::ops::recursive::RecursionConfig,
) -> Option<pathalg_core::slice::SlicePlan<'a>> {
    plan.sliceable_pipeline()
        .filter(|sliced| sliced.lazy_eligible(recursion))
}

/// Estimated fraction of paths satisfying a condition.
pub fn condition_selectivity(condition: &Condition, stats: &GraphStats) -> f64 {
    match condition {
        Condition::True => 1.0,
        Condition::And(a, b) => condition_selectivity(a, stats) * condition_selectivity(b, stats),
        Condition::Or(a, b) => {
            let sa = condition_selectivity(a, stats);
            let sb = condition_selectivity(b, stats);
            (sa + sb - sa * sb).clamp(0.0, 1.0)
        }
        Condition::Not(c) => 1.0 - condition_selectivity(c, stats),
        Condition::Bound(_) => 0.9,
        Condition::Substr(_, _) => 0.25,
        // Whole-path restrictor predicates: most short paths satisfy them.
        Condition::IsTrail | Condition::IsAcyclic | Condition::IsSimple => 0.8,
        Condition::Compare {
            accessor,
            op,
            value,
        } => {
            use pathalg_core::condition::CompareOp::*;
            let equality = match accessor {
                Accessor::EdgeLabel(_) => value
                    .as_str()
                    .map(|l| stats.edge_label_selectivity(l))
                    .unwrap_or(DEFAULT_PROPERTY_SELECTIVITY),
                Accessor::NodeLabel(_) => value
                    .as_str()
                    .map(|l| {
                        let total = stats.node_count().max(1) as f64;
                        stats.nodes_with_label(l) as f64 / total
                    })
                    .unwrap_or(DEFAULT_PROPERTY_SELECTIVITY),
                Accessor::NodeProperty(Position::First, _)
                | Accessor::NodeProperty(Position::Last, _)
                | Accessor::NodeProperty(Position::Index(_), _)
                | Accessor::EdgeProperty(_, _) => DEFAULT_PROPERTY_SELECTIVITY,
                Accessor::Len => 0.2,
            };
            match op {
                Eq => equality,
                Ne => 1.0 - equality,
                Lt | Le | Gt | Ge => 0.33,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::projection::ProjectionSpec;
    use pathalg_core::GroupKey;
    use pathalg_graph::fixtures::figure1::figure1_graph;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    fn stats() -> GraphStats {
        GraphStats::compute(&figure1_graph())
    }

    fn knows_scan() -> PlanExpr {
        PlanExpr::edges().select(Condition::edge_label(1, "Knows"))
    }

    #[test]
    fn leaves_estimate_exact_counts() {
        let s = stats();
        assert_eq!(estimate(&PlanExpr::nodes(), &s).cardinality, 7.0);
        assert_eq!(estimate(&PlanExpr::edges(), &s).cardinality, 11.0);
    }

    #[test]
    fn label_selection_uses_real_selectivity() {
        let s = stats();
        let est = estimate(&knows_scan(), &s);
        // 4 of 11 edges are Knows.
        assert!((est.cardinality - 4.0).abs() < 1e-6);
        assert!(est.cost > est.cardinality);
    }

    #[test]
    fn condition_selectivities_are_sane() {
        let s = stats();
        assert!(
            (condition_selectivity(&Condition::edge_label(1, "Knows"), &s) - 4.0 / 11.0).abs()
                < 1e-9
        );
        assert_eq!(condition_selectivity(&Condition::True, &s), 1.0);
        let and = Condition::edge_label(1, "Knows").and(Condition::first_property("name", "Moe"));
        assert!(condition_selectivity(&and, &s) < 4.0 / 11.0);
        let or = Condition::edge_label(1, "Knows").or(Condition::edge_label(1, "Likes"));
        let sel_or = condition_selectivity(&or, &s);
        assert!(sel_or > 4.0 / 11.0 && sel_or <= 1.0);
        let not = Condition::edge_label(1, "Knows").not();
        assert!((condition_selectivity(&not, &s) - (1.0 - 4.0 / 11.0)).abs() < 1e-9);
        assert!(condition_selectivity(&Condition::first_label("Person"), &s) > 0.5);
    }

    #[test]
    fn pushed_down_plans_cost_less() {
        // Figure 6: filtering before the join must be estimated cheaper than
        // filtering after it.
        let s = stats();
        let filter = Condition::first_property("name", "Moe");
        let unpushed = knows_scan().join(knows_scan()).select(filter.clone());
        let pushed = knows_scan().select(filter).join(knows_scan());
        let a = estimate(&unpushed, &s);
        let b = estimate(&pushed, &s);
        assert!(b.cost < a.cost, "pushed {} vs unpushed {}", b.cost, a.cost);
        // Cardinality of the final result is (approximately) the same.
        assert!((a.cardinality - b.cardinality).abs() < 1e-6);
    }

    #[test]
    fn restricted_recursion_is_estimated_cheaper_than_walks() {
        let s = GraphStats::compute(&snb_like_graph(&SnbConfig::scale(50, 4)));
        let base = knows_scan();
        let walk = base.clone().recursive(PathSemantics::Walk);
        let shortest = base.recursive(PathSemantics::Shortest);
        let cw = estimate(&walk, &s);
        let cs = estimate(&shortest, &s);
        assert!(cs.cost <= cw.cost);
    }

    #[test]
    fn phi_impl_choice_covers_all_three_implementations() {
        use PathSemantics::*;
        let serial = ExecutionConfig::default();
        let parallel = ExecutionConfig::with_threads(4);
        // Any parallel configuration forces the frontier engine.
        assert_eq!(choose_phi_impl(Trail, 4, &parallel), PhiImpl::Frontier);
        assert_eq!(choose_phi_impl(Shortest, 4, &parallel), PhiImpl::Frontier);
        // Tiny bases stay on the semi-naïve fixpoint.
        assert_eq!(choose_phi_impl(Trail, 4, &serial), PhiImpl::Seminaive);
        assert_eq!(choose_phi_impl(Shortest, 4, &serial), PhiImpl::Seminaive);
        // Medium Shortest bases go to the specialised BFS…
        assert_eq!(choose_phi_impl(Shortest, 64, &serial), PhiImpl::BfsShortest);
        // …while everything else at scale uses the frontier engine.
        assert_eq!(choose_phi_impl(Trail, 64, &serial), PhiImpl::Frontier);
        assert_eq!(choose_phi_impl(Shortest, 5000, &serial), PhiImpl::Frontier);
        assert_eq!(choose_phi_impl(Walk, 5000, &serial), PhiImpl::Frontier);
    }

    #[test]
    fn scan_and_pipeline_choosers_pick_pmr_lazy_where_it_pays() {
        use pathalg_core::ops::projection::{ProjectionSpec, Take};
        use pathalg_core::ops::recursive::RecursionConfig;
        use pathalg_core::GroupKey;

        let serial = ExecutionConfig::default();
        let parallel = ExecutionConfig::with_threads(4);
        // Root-level serial ϕShortest scans take the PMR…
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &serial, true),
            PhiImpl::PmrLazy
        );
        // …but non-root, parallel, or non-Shortest scans stay on the frontier.
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &serial, false),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Shortest, &parallel, true),
            PhiImpl::Frontier
        );
        assert_eq!(
            choose_scan_phi_impl(PathSemantics::Trail, &serial, true),
            PhiImpl::Frontier
        );

        let recursion = RecursionConfig::default();
        let sliced = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
        assert!(choose_pipeline_impl(&sliced, &recursion).is_some());
        // π(*,*,*) slices nothing.
        let all = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::all());
        assert!(choose_pipeline_impl(&all, &recursion).is_none());
        // Unbounded Walk must keep the materialised infinite-answer check;
        // with a bound the lazy pipeline applies.
        let walk = knows_scan()
            .recursive(PathSemantics::Walk)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::new(Take::All, Take::All, Take::Count(1)));
        assert!(choose_pipeline_impl(&walk, &RecursionConfig::unbounded()).is_none());
        assert!(choose_pipeline_impl(&walk, &RecursionConfig::with_max_length(4)).is_some());
    }

    #[test]
    fn extended_operators_add_their_input_cost() {
        let s = stats();
        let plan = knows_scan()
            .recursive(PathSemantics::Trail)
            .group_by(GroupKey::SourceTarget)
            .project(ProjectionSpec::all());
        let est = estimate(&plan, &s);
        assert!(est.cost > 0.0);
        assert!(est.cardinality > 0.0);
        let inner = estimate(&knows_scan().recursive(PathSemantics::Trail), &s);
        assert!(est.cost > inner.cost);
    }
}
