//! Execution configuration and the engine-level plan evaluator.
//!
//! `pathalg-core`'s [`pathalg_core::eval::Evaluator`] is the
//! *reference* interpreter: one algorithm per operator, single-threaded,
//! always the semi-naïve fixpoint for ϕ. [`EngineEvaluator`] is the engine's
//! physical counterpart: it walks the same logical plans and calls the same
//! `pathalg-core` operator implementations for σ/⋈/∪/γ/τ/π, but dispatches
//! every ϕ node through the cost model
//! ([`crate::cost::choose_phi_impl`]) to one of the physical
//! implementations in [`crate::physical`] — including the parallel CSR-native
//! frontier engine, configured by [`ExecutionConfig`].
//!
//! Plans of the shape `ϕ(σ_{label(edge(1))=ℓ}(Edges(G)))` — the base relation
//! of every `[:ℓ+]` pattern — additionally skip the base materialisation:
//! the engine builds a label-restricted [`CsrGraph`] snapshot and expands
//! directly over its adjacency. The collected [`EvalStats`] charge the
//! skipped operators exactly as the reference evaluator would, so `EXPLAIN
//! ANALYZE` output stays comparable between the two interpreters.
//!
//! Results are identical to the reference evaluator as *sets* for every
//! plan, thread count, and batch size (cross-validated in
//! `tests/cross_validation.rs`); the frontier engine's merge discipline
//! additionally makes the engine's own output ordering independent of
//! [`ExecutionConfig::threads`].

use crate::cost::{choose_phi_impl, PhiImpl};
use crate::physical::frontier::{phi_frontier, phi_frontier_csr};
use crate::physical::{phi_bfs_shortest, phi_seminaive};
use pathalg_core::condition::{Accessor, CompareOp, Condition, Position};
use pathalg_core::error::AlgebraError;
use pathalg_core::eval::{EvalOutput, EvalStats};
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::group_by::group_by;
use pathalg_core::ops::join::join;
use pathalg_core::ops::order_by::order_by;
use pathalg_core::ops::projection::projection;
use pathalg_core::ops::recursive::RecursionConfig;
use pathalg_core::ops::selection::selection;
use pathalg_core::ops::union::union;
use pathalg_core::pathset::PathSet;
use pathalg_core::solution_space::SolutionSpace;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::graph::PropertyGraph;

/// Parallel-execution knobs of the [`QueryRunner`](crate::runner::QueryRunner).
///
/// The defaults are serial: parallelism is opt-in because the engine's
/// workloads start paying for thread scheduling only once the per-source
/// expansions are substantial. `batch_size` is the number of source nodes a
/// worker claims at a time — large enough to amortise per-batch scratch
/// allocations, small enough to balance skewed degree distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads for the frontier engine (≤ 1 means inline
    /// serial execution with zero synchronisation overhead).
    pub threads: usize,
    /// Number of source nodes per scheduling batch.
    pub batch_size: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch_size: 32,
        }
    }
}

impl ExecutionConfig {
    /// A configuration with `threads` workers and the default batch size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// The engine's physical plan interpreter (see the module docs).
pub struct EngineEvaluator<'g> {
    graph: &'g PropertyGraph,
    recursion: RecursionConfig,
    exec: ExecutionConfig,
    stats: EvalStats,
}

impl<'g> EngineEvaluator<'g> {
    /// Creates an evaluator over `graph` with the given recursion bounds and
    /// execution configuration.
    pub fn new(
        graph: &'g PropertyGraph,
        recursion: RecursionConfig,
        exec: ExecutionConfig,
    ) -> Self {
        Self {
            graph,
            recursion,
            exec,
            stats: EvalStats::default(),
        }
    }

    /// The statistics collected so far (same counters as the reference
    /// evaluator).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Evaluates an expression, returning paths or a solution space according
    /// to the root operator.
    pub fn eval(&mut self, expr: &PlanExpr) -> Result<EvalOutput, AlgebraError> {
        self.stats.operators_evaluated += 1;
        let out = match expr {
            PlanExpr::Nodes => EvalOutput::Paths(PathSet::nodes(self.graph)),
            PlanExpr::Edges => EvalOutput::Paths(PathSet::edges(self.graph)),
            PlanExpr::Selection { condition, input } => {
                let input = self.eval_paths_internal(input, "selection")?;
                EvalOutput::Paths(selection(self.graph, condition, &input))
            }
            PlanExpr::Join { left, right } => {
                self.stats.join_calls += 1;
                let l = self.eval_paths_internal(left, "join")?;
                let r = self.eval_paths_internal(right, "join")?;
                EvalOutput::Paths(join(&l, &r))
            }
            PlanExpr::Union { left, right } => {
                let l = self.eval_paths_internal(left, "union")?;
                let r = self.eval_paths_internal(right, "union")?;
                EvalOutput::Paths(union(&l, &r))
            }
            PlanExpr::Recursive { semantics, input } => {
                self.stats.recursive_calls += 1;
                if let Some(label) = label_scan(input) {
                    // CSR-native fast path: never materialise σℓ(Edges(G))
                    // as a PathSet; expand over the label-restricted CSR.
                    let csr = CsrGraph::with_label(self.graph, label);
                    self.charge_skipped(self.graph.edge_count()); // Edges(G)
                    self.charge_skipped(csr.edge_count()); // σ label
                    EvalOutput::Paths(phi_frontier_csr(
                        &csr,
                        *semantics,
                        &self.recursion,
                        &self.exec,
                    )?)
                } else {
                    let base = self.eval_paths_internal(input, "recursive")?;
                    let out = match choose_phi_impl(*semantics, base.len(), &self.exec) {
                        PhiImpl::Seminaive => phi_seminaive(*semantics, &base, &self.recursion)?,
                        PhiImpl::BfsShortest => phi_bfs_shortest(&base, &self.recursion)?,
                        PhiImpl::Frontier => {
                            phi_frontier(*semantics, &base, &self.recursion, &self.exec)?
                        }
                    };
                    EvalOutput::Paths(out)
                }
            }
            PlanExpr::GroupBy { key, input } => {
                let input = self.eval_paths_internal(input, "group-by")?;
                EvalOutput::Space(group_by(*key, &input))
            }
            PlanExpr::OrderBy { key, input } => {
                let input = self.eval_space_internal(input, "order-by")?;
                EvalOutput::Space(order_by(*key, &input))
            }
            PlanExpr::Projection { spec, input } => {
                spec.validate()?;
                let input = self.eval_space_internal(input, "projection")?;
                EvalOutput::Paths(projection(spec, &input))
            }
        };
        let n = out.path_count();
        self.stats.intermediate_paths += n;
        self.stats.max_intermediate = self.stats.max_intermediate.max(n);
        Ok(out)
    }

    /// Evaluates an expression that must produce a set of paths.
    pub fn eval_paths(&mut self, expr: &PlanExpr) -> Result<PathSet, AlgebraError> {
        self.eval(expr)?.into_paths()
    }

    /// Evaluates an expression that must produce a solution space.
    pub fn eval_space(&mut self, expr: &PlanExpr) -> Result<SolutionSpace, AlgebraError> {
        self.eval(expr)?.into_space()
    }

    /// Accounts for an operator the CSR fast path evaluated implicitly, with
    /// the same counters the reference evaluator would have charged.
    fn charge_skipped(&mut self, paths: usize) {
        self.stats.operators_evaluated += 1;
        self.stats.intermediate_paths += paths;
        self.stats.max_intermediate = self.stats.max_intermediate.max(paths);
    }

    fn eval_paths_internal(
        &mut self,
        expr: &PlanExpr,
        operator: &'static str,
    ) -> Result<PathSet, AlgebraError> {
        match self.eval(expr)? {
            EvalOutput::Paths(p) => Ok(p),
            EvalOutput::Space(_) => Err(AlgebraError::TypeMismatch {
                operator,
                expected: "a set of paths",
                found: "a solution space",
            }),
        }
    }

    fn eval_space_internal(
        &mut self,
        expr: &PlanExpr,
        operator: &'static str,
    ) -> Result<SolutionSpace, AlgebraError> {
        match self.eval(expr)? {
            EvalOutput::Space(s) => Ok(s),
            EvalOutput::Paths(_) => Err(AlgebraError::TypeMismatch {
                operator,
                expected: "a solution space",
                found: "a set of paths",
            }),
        }
    }
}

/// Recognises `σ_{label(edge(1)) = ℓ}(Edges(G))` — the shape every `[:ℓ+]`
/// base compiles to — and returns `ℓ`.
fn label_scan(plan: &PlanExpr) -> Option<&str> {
    let PlanExpr::Selection { condition, input } = plan else {
        return None;
    };
    if !matches!(**input, PlanExpr::Edges) {
        return None;
    }
    let Condition::Compare {
        accessor: Accessor::EdgeLabel(Position::Index(1)),
        op: CompareOp::Eq,
        value,
    } = condition
    else {
        return None;
    };
    value.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::eval::Evaluator;
    use pathalg_core::ops::projection::ProjectionSpec;
    use pathalg_core::ops::recursive::PathSemantics;
    use pathalg_core::GroupKey;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    fn plans() -> Vec<PlanExpr> {
        let knows = PlanExpr::edges().select(Condition::edge_label(1, "Knows"));
        let outer = PlanExpr::edges()
            .select(Condition::edge_label(1, "Likes"))
            .join(PlanExpr::edges().select(Condition::edge_label(1, "Has_creator")));
        vec![
            knows.clone().recursive(PathSemantics::Trail),
            knows.clone().recursive(PathSemantics::Shortest),
            outer.clone().recursive(PathSemantics::Simple),
            knows
                .clone()
                .recursive(PathSemantics::Acyclic)
                .union(outer.recursive(PathSemantics::Acyclic)),
            knows
                .recursive(PathSemantics::Trail)
                .group_by(GroupKey::SourceTarget)
                .project(ProjectionSpec::all()),
        ]
    }

    #[test]
    fn engine_evaluator_matches_the_reference_on_every_plan() {
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        for plan in plans() {
            let reference = Evaluator::new(&f.graph).eval_paths(&plan).unwrap();
            for threads in [1, 2, 8] {
                let mut engine = EngineEvaluator::new(
                    &f.graph,
                    cfg,
                    ExecutionConfig {
                        threads,
                        batch_size: 2,
                    },
                );
                let out = engine.eval_paths(&plan).unwrap();
                assert_eq!(out, reference, "plan {plan} at {threads} threads");
            }
        }
    }

    #[test]
    fn csr_fast_path_charges_the_same_stats_as_the_reference() {
        let f = Figure1::new();
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Trail);
        let mut reference = Evaluator::new(&f.graph);
        reference.eval_paths(&plan).unwrap();
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::default(),
            ExecutionConfig::default(),
        );
        engine.eval_paths(&plan).unwrap();
        assert_eq!(engine.stats(), reference.stats());
    }

    #[test]
    fn label_scan_shape_detection() {
        let scan = PlanExpr::edges().select(Condition::edge_label(1, "Knows"));
        assert_eq!(label_scan(&scan), Some("Knows"));
        // Wrong position, extra operator, or non-label condition: no match.
        let wrong_pos = PlanExpr::edges().select(Condition::edge_label(2, "Knows"));
        assert_eq!(label_scan(&wrong_pos), None);
        let not_edges = PlanExpr::nodes().select(Condition::edge_label(1, "Knows"));
        assert_eq!(label_scan(&not_edges), None);
        let nested = scan.select(Condition::first_property("name", "Moe"));
        assert_eq!(label_scan(&nested), None);
    }

    #[test]
    fn bigger_graphs_agree_between_interpreters_in_parallel() {
        let g = snb_like_graph(&SnbConfig::scale(40, 21));
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Shortest);
        let reference = Evaluator::new(&g).eval_paths(&plan).unwrap();
        let mut engine = EngineEvaluator::new(
            &g,
            RecursionConfig::default(),
            ExecutionConfig::with_threads(4),
        );
        assert_eq!(engine.eval_paths(&plan).unwrap(), reference);
    }
}
