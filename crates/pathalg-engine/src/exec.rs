//! Execution configuration and the engine-level plan evaluator.
//!
//! `pathalg-core`'s [`pathalg_core::eval::Evaluator`] is the
//! *reference* interpreter: one algorithm per operator, single-threaded,
//! always the semi-naïve fixpoint for ϕ. [`EngineEvaluator`] is the engine's
//! physical counterpart: it walks the same logical plans and calls the same
//! `pathalg-core` operator implementations for σ/⋈/∪/γ/τ/π, but dispatches
//! every ϕ node through the cost model
//! ([`crate::cost::choose_phi_impl`]) to one of the physical
//! implementations in [`crate::physical`] — including the parallel CSR-native
//! frontier engine, configured by [`ExecutionConfig`].
//!
//! Plans of the shape `ϕ(σ_{label(edge(1))=ℓ}(Edges(G)))` — the base relation
//! of every `[:ℓ+]` pattern — additionally skip the base materialisation:
//! the engine builds a label-restricted [`CsrGraph`] snapshot and expands
//! directly over its adjacency. The collected [`EvalStats`] charge the
//! skipped operators exactly as the reference evaluator would, so `EXPLAIN
//! ANALYZE` output stays comparable between the two interpreters.
//!
//! Results are identical to the reference evaluator as *sets* for every
//! plan, thread count, and batch size (cross-validated in
//! `tests/cross_validation.rs`); the frontier engine's merge discipline
//! additionally makes the engine's own output ordering independent of
//! [`ExecutionConfig::threads`].

use crate::cost::{
    choose_phi_impl, choose_pipeline_strategy, choose_scan_phi_impl, estimate_phi, ClosureEstimate,
    LazyMode, PhiImpl,
};
use pathalg_core::budget::CancelToken;
use pathalg_core::condition::Condition;
use pathalg_core::error::AlgebraError;
use pathalg_core::eval::{EvalOutput, EvalStats};
use pathalg_core::expr::PlanExpr;
use pathalg_core::obs::WorkCounters;
use pathalg_core::ops::group_by::group_by;
use pathalg_core::ops::join::join;
use pathalg_core::ops::order_by::order_by;
use pathalg_core::ops::projection::projection;
use pathalg_core::ops::recursive::PathSemantics;
use pathalg_core::ops::recursive::RecursionConfig;
use pathalg_core::ops::selection::selection;
use pathalg_core::ops::union::union;
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_core::pathset_repr::PathSetRepr;
use pathalg_core::solution_space::SolutionSpace;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::graph::PropertyGraph;
use pathalg_graph::ids::NodeId;
use pathalg_graph::stats::GraphStats;
use pathalg_pmr::parallel::{self as pmr_parallel, ParallelConfig};
use pathalg_pmr::{EndpointFilter, Pmr};
use std::sync::Arc;

use crate::physical::frontier::{phi_frontier_csr_with_cancel, phi_frontier_with_cancel};
use crate::physical::{phi_bfs_shortest_with_cancel, phi_seminaive};

/// One recorded strategy decision: which physical implementation a ϕ node or
/// sliced pipeline was dispatched to, and the closure estimate (when graph
/// statistics were available) that justified it. Surfaced by
/// `QueryResult::explain` and the `repro joins` decision table.
#[derive(Clone, Debug, PartialEq)]
pub struct StrategyDecision {
    /// Display form of the operator the decision applies to.
    pub operator: String,
    /// Short name of the chosen implementation ([`PhiImpl::name`],
    /// `"lazy-sliced-pipeline"`, or `"parallel-lazy-pipeline"`).
    pub chosen: &'static str,
    /// The worker-thread count the decision was made for
    /// ([`ExecutionConfig::threads`]) — strategy choices depend on it, so it
    /// is recorded to make them reproducible from `explain()` and the
    /// `repro joins` table.
    pub threads: usize,
    /// The estimate behind the choice, if statistics were available.
    pub estimate: Option<ClosureEstimate>,
}

impl std::fmt::Display for StrategyDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {} [threads={}]",
            self.operator, self.chosen, self.threads
        )?;
        if let Some(est) = &self.estimate {
            write!(f, " ({est})")?;
        }
        Ok(())
    }
}

/// Parallel-execution knobs of the [`QueryRunner`](crate::runner::QueryRunner).
///
/// The defaults are serial: parallelism is opt-in because the engine's
/// workloads start paying for thread scheduling only once the per-source
/// expansions are substantial. `batch_size` is the number of source nodes a
/// worker claims at a time — large enough to amortise per-batch scratch
/// allocations, small enough to balance skewed degree distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Number of worker threads for the frontier engine (≤ 1 means inline
    /// serial execution with zero synchronisation overhead).
    pub threads: usize,
    /// Number of source nodes per scheduling batch.
    pub batch_size: usize,
    /// Below this base cardinality the frontier engine's per-source index
    /// construction is not worth its setup cost and the semi-naïve fixpoint
    /// wins — used as the static fallback when no [`GraphStats`]-driven
    /// closure estimate is available (see
    /// [`crate::cost::choose_phi_impl`]). Default
    /// [`ExecutionConfig::DEFAULT_FRONTIER_MIN_BASE`].
    pub frontier_min_base: usize,
    /// Up to this base cardinality the single-threaded Shortest BFS, which
    /// shares the fixpoint's simple data structures but prunes by endpoint
    /// distance, is competitive with the frontier engine; beyond it the
    /// frontier's per-source distance tables and clone-free level rotation
    /// dominate. Default
    /// [`ExecutionConfig::DEFAULT_BFS_SHORTEST_MAX_BASE`].
    pub bfs_shortest_max_base: usize,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch_size: 32,
            frontier_min_base: Self::DEFAULT_FRONTIER_MIN_BASE,
            bfs_shortest_max_base: Self::DEFAULT_BFS_SHORTEST_MAX_BASE,
        }
    }
}

impl ExecutionConfig {
    /// Default of [`ExecutionConfig::frontier_min_base`], measured on the
    /// `ablations` bench: below ~24 base paths the fixpoint's lack of setup
    /// beats the frontier's per-source batching.
    pub const DEFAULT_FRONTIER_MIN_BASE: usize = 24;

    /// Default of [`ExecutionConfig::bfs_shortest_max_base`]: up to ~96 base
    /// paths the specialised Shortest BFS and the frontier are within noise
    /// of each other; the simpler algorithm wins the tie.
    pub const DEFAULT_BFS_SHORTEST_MAX_BASE: usize = 96;

    /// A configuration with `threads` workers and the default batch size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// The engine's physical plan interpreter (see the module docs).
pub struct EngineEvaluator<'g> {
    graph: &'g PropertyGraph,
    recursion: RecursionConfig,
    exec: ExecutionConfig,
    graph_stats: Option<&'g GraphStats>,
    cancel: Option<Arc<CancelToken>>,
    stats: EvalStats,
    work: WorkCounters,
    depth: usize,
    lazy_pipeline_fired: bool,
    decisions: Vec<StrategyDecision>,
}

impl<'g> EngineEvaluator<'g> {
    /// Creates an evaluator over `graph` with the given recursion bounds and
    /// execution configuration. Strategy choices fall back to the static
    /// base-size thresholds of [`ExecutionConfig`]; attach statistics with
    /// [`EngineEvaluator::with_graph_stats`] for the adaptive estimator.
    pub fn new(
        graph: &'g PropertyGraph,
        recursion: RecursionConfig,
        exec: ExecutionConfig,
    ) -> Self {
        Self {
            graph,
            recursion,
            exec,
            graph_stats: None,
            cancel: None,
            stats: EvalStats::default(),
            work: WorkCounters::default(),
            depth: 0,
            lazy_pipeline_fired: false,
            decisions: Vec::new(),
        }
    }

    /// Attaches precomputed [`GraphStats`], switching every ϕ dispatch from
    /// the static thresholds to the stats-driven closure estimator
    /// ([`crate::cost::estimate_phi`]). The runner always does this; the
    /// choice never changes results, only which implementation runs.
    pub fn with_graph_stats(mut self, stats: &'g GraphStats) -> Self {
        self.graph_stats = Some(stats);
        self
    }

    /// Attaches a shared [`CancelToken`]: every ϕ dispatch (serial and
    /// parallel, full drains and sliced pipelines) threads the token into
    /// its enumeration loops, so firing it — or its deadline passing —
    /// aborts the evaluation with a typed
    /// [`AlgebraError::Cancelled`] / [`AlgebraError::DeadlineExceeded`]
    /// within one expansion level or batch. A token that never fires leaves
    /// results byte-identical at every thread count.
    pub fn with_cancel(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The evaluator-level cancellation point, polled at every ϕ dispatch.
    fn check_cancel(&self) -> Result<(), AlgebraError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// The statistics collected so far (same counters as the reference
    /// evaluator).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The deterministic PMR work counters accumulated across every lazy
    /// dispatch this evaluator performed (serial and parallel, full drains
    /// and sliced pipelines); zero when no lazy strategy fired. Parallel
    /// dispatches fold in the batch-order merged [`ParallelRun::work`]
    /// totals, so on serial-parity schedules the counters match the serial
    /// run byte for byte at every thread count.
    ///
    /// [`ParallelRun::work`]: pathalg_pmr::parallel::ParallelRun::work
    pub fn work_counters(&self) -> WorkCounters {
        self.work
    }

    /// The strategy decisions recorded so far, in evaluation order — one per
    /// dispatched ϕ node or sliced pipeline.
    pub fn decisions(&self) -> &[StrategyDecision] {
        &self.decisions
    }

    /// True if a sliceable pipeline was actually evaluated through the lazy
    /// PMR during this evaluator's lifetime — an observation of what ran,
    /// not a prediction.
    pub fn used_lazy_pipeline(&self) -> bool {
        self.lazy_pipeline_fired
    }

    /// Evaluates an expression, returning paths or a solution space according
    /// to the root operator.
    pub fn eval(&mut self, expr: &PlanExpr) -> Result<EvalOutput, AlgebraError> {
        let at_root = self.depth == 0;
        self.depth += 1;
        let out = self.eval_node(expr, at_root);
        self.depth -= 1;
        out
    }

    fn eval_node(&mut self, expr: &PlanExpr, at_root: bool) -> Result<EvalOutput, AlgebraError> {
        self.stats.operators_evaluated += 1;
        let out = match expr {
            PlanExpr::Nodes => EvalOutput::Paths(PathSet::nodes(self.graph)),
            PlanExpr::Edges => EvalOutput::Paths(PathSet::edges(self.graph)),
            PlanExpr::Selection { condition, input } => {
                let input = self.eval_paths_internal(input, "selection")?;
                EvalOutput::Paths(selection(self.graph, condition, &input))
            }
            PlanExpr::Join { left, right } => {
                self.stats.join_calls += 1;
                let l = self.eval_paths_internal(left, "join")?;
                let r = self.eval_paths_internal(right, "join")?;
                EvalOutput::Paths(join(&l, &r))
            }
            PlanExpr::Union { left, right } => {
                let l = self.eval_paths_internal(left, "union")?;
                let r = self.eval_paths_internal(right, "union")?;
                EvalOutput::Paths(union(&l, &r))
            }
            PlanExpr::Recursive { semantics, input } => {
                self.check_cancel()?;
                self.stats.recursive_calls += 1;
                let chain: Option<Vec<&str>> = input.label_scan_chain();
                let estimate = match (&chain, self.graph_stats) {
                    (Some(labels), Some(stats)) => Some(crate::cost::estimate_closure(
                        stats,
                        labels,
                        *semantics,
                        &self.recursion,
                    )),
                    (None, Some(stats)) => {
                        Some(estimate_phi(stats, *semantics, input, &self.recursion))
                    }
                    _ => None,
                };
                let chain_choice = chain.as_ref().map(|labels| {
                    choose_scan_phi_impl(
                        *semantics,
                        &self.exec,
                        at_root,
                        labels.len(),
                        &self.recursion,
                        estimate.as_ref(),
                    )
                });
                match (chain, chain_choice) {
                    (Some(labels), _) if labels.len() == 1 => {
                        // CSR-native fast path: never materialise σℓ(Edges(G))
                        // as a PathSet; expand over the label-restricted CSR.
                        let label = labels[0];
                        let csr = CsrGraph::with_label(self.graph, label);
                        self.charge_skipped(self.graph.edge_count()); // Edges(G)
                        self.charge_skipped(csr.edge_count()); // σ label
                        let chosen = chain_choice.expect("chain is Some");
                        self.record_decision(
                            format!("ϕ{} over label scan :{label}", semantics.keyword()),
                            chosen.name(),
                            estimate,
                        );
                        let out = match chosen {
                            // Root-level serial ϕShortest: same expansion, but
                            // paths live as prefix-sharing PMR arena steps
                            // until emission. Output sequence identical to
                            // the frontier.
                            PhiImpl::PmrLazy => {
                                let mut pmr = Pmr::from_csr(csr, *semantics, self.recursion);
                                if let Some(token) = &self.cancel {
                                    pmr.share_cancel(token.clone());
                                }
                                let out = pmr.enumerate_all()?;
                                self.work.merge(&pmr.work_counters());
                                out
                            }
                            _ => {
                                let out = phi_frontier_csr_with_cancel(
                                    &csr,
                                    *semantics,
                                    &self.recursion,
                                    &self.exec,
                                    self.cancel.as_deref(),
                                )?;
                                // The frontier produces exactly the paths it
                                // keeps, so its emission count matches what
                                // the PMR reports on the same full drain.
                                self.work.paths_emitted += out.len() as u64;
                                out
                            }
                        };
                        EvalOutput::Paths(out)
                    }
                    (Some(labels), Some(PhiImpl::PmrLazy)) => {
                        // Lazy endpoint-keyed join: the per-hop CSR indexes
                        // replace the hash join; neither join side, the join
                        // result, nor the base PathSet is materialised.
                        // Output sequence identical to join-then-frontier —
                        // multi-threaded configurations enumerate through
                        // the per-source batch scheduler, whose batch-order
                        // merge reproduces the same sequence.
                        self.record_decision(
                            format!("ϕ{} over join chain {labels:?}", semantics.keyword()),
                            PhiImpl::PmrLazy.name(),
                            estimate,
                        );
                        let hops: Arc<[CsrGraph]> = labels
                            .iter()
                            .map(|l| CsrGraph::with_label(self.graph, l))
                            .collect();
                        for csr in hops.iter() {
                            self.charge_skipped(self.graph.edge_count()); // Edges(G)
                            self.charge_skipped(csr.edge_count()); // σ label
                        }
                        let (out, segments) = if self.exec.threads > 1 {
                            let (semantics, recursion) = (*semantics, self.recursion);
                            let cancel = self.cancel.clone();
                            let factory = || {
                                let mut pmr =
                                    Pmr::from_shared_join(hops.clone(), semantics, recursion);
                                if let Some(token) = &cancel {
                                    pmr.share_cancel(token.clone());
                                }
                                pmr
                            };
                            let sources = factory().sources();
                            let weights = source_weights(&hops[0], estimate.as_ref(), &sources);
                            let run = pmr_parallel::enumerate_all(
                                &factory,
                                &sources,
                                Some(&weights),
                                &self.parallel_config(),
                                recursion.max_paths,
                            )?;
                            self.work.merge(&run.work);
                            (run.paths, run.base_segments.unwrap_or(0))
                        } else {
                            let mut pmr =
                                Pmr::from_shared_join(hops.clone(), *semantics, self.recursion);
                            if let Some(token) = &self.cancel {
                                pmr.share_cancel(token.clone());
                            }
                            let out = pmr.enumerate_all()?;
                            let segments = pmr.base_segments().unwrap_or(0);
                            self.work.merge(&pmr.work_counters());
                            (out, segments)
                        };
                        // Charge the k−1 joins with the slice of the join
                        // output the expansion actually generated.
                        self.stats.join_calls += labels.len() - 1;
                        for _ in 1..labels.len() {
                            self.charge_skipped(segments);
                        }
                        EvalOutput::Paths(out)
                    }
                    _ => {
                        let base = self.eval_paths_internal(input, "recursive")?;
                        let chosen =
                            choose_phi_impl(*semantics, base.len(), &self.exec, estimate.as_ref());
                        self.record_decision(
                            format!(
                                "ϕ{} over materialised base ({} paths)",
                                semantics.keyword(),
                                base.len()
                            ),
                            chosen.name(),
                            estimate,
                        );
                        let out = match chosen {
                            // The cost model only dispatches the fixpoint for
                            // tiny bases; the arm-entry check above is its
                            // cancellation point.
                            PhiImpl::Seminaive => {
                                phi_seminaive(*semantics, &base, &self.recursion)?
                            }
                            PhiImpl::BfsShortest => phi_bfs_shortest_with_cancel(
                                &base,
                                &self.recursion,
                                self.cancel.as_deref(),
                            )?,
                            // `choose_phi_impl` never picks the PMR for a
                            // materialised base — it only applies to label
                            // scans and sliced pipelines.
                            PhiImpl::Frontier | PhiImpl::PmrLazy => phi_frontier_with_cancel(
                                *semantics,
                                &base,
                                &self.recursion,
                                &self.exec,
                                self.cancel.as_deref(),
                            )?,
                        };
                        // Every materialised-base implementation emits
                        // exactly its output; count it so closures that never
                        // touch the PMR still report work.
                        self.work.paths_emitted += out.len() as u64;
                        EvalOutput::Paths(out)
                    }
                }
            }
            PlanExpr::GroupBy { key, input } => {
                let input = self.eval_paths_internal(input, "group-by")?;
                EvalOutput::Space(group_by(*key, &input))
            }
            PlanExpr::OrderBy { key, input } => {
                let input = self.eval_space_internal(input, "order-by")?;
                EvalOutput::Space(order_by(*key, &input))
            }
            PlanExpr::Projection { spec, input } => {
                spec.validate()?;
                if let Some(paths) = self.try_sliced_pipeline(expr)? {
                    EvalOutput::Paths(paths)
                } else {
                    let input = self.eval_space_internal(input, "projection")?;
                    EvalOutput::Paths(projection(spec, &input))
                }
            }
        };
        let n = out.path_count();
        self.stats.intermediate_paths += n;
        self.stats.max_intermediate = self.stats.max_intermediate.max(n);
        Ok(out)
    }

    /// Evaluates a recognised sliceable pipeline
    /// (`π(τA?(γψ(σ?(ϕ(σℓ1(E) ⋈ … ⋈ σℓk(E))))))`, see
    /// [`pathalg_core::slice`]) through the lazy PMR, pulling only the paths
    /// the projection keeps. Endpoint filters are pushed into the expansion:
    /// the first-node part restricts the source schedule, the last-node part
    /// becomes a target mask consulted before any path is reconstructed and
    /// inside the reachability-based source stop. Returns `None` when the
    /// cost model keeps the plan on the materialising path.
    ///
    /// The collected [`EvalStats`] charge the bypassed operators with the
    /// work the lazy evaluation actually performed (arena steps generated,
    /// kept paths flowing through γ/τ) — deliberately *not* the counts the
    /// reference evaluator would report, since avoiding that work is the
    /// point of the strategy.
    fn try_sliced_pipeline(&mut self, expr: &PlanExpr) -> Result<Option<PathSet>, AlgebraError> {
        let Some((plan, estimate, mode)) =
            choose_pipeline_strategy(expr, &self.recursion, &self.exec, self.graph_stats)
        else {
            return Ok(None);
        };
        let chain = plan
            .base
            .label_scan_chain()
            .expect("lazy_eligible checked the base is a scan chain");
        let (source_mask, target_mask) = match plan.filter {
            Some(condition) => {
                let (first, last) = condition
                    .endpoint_split()
                    .expect("lazy_eligible checked the filter splits");
                (
                    first.map(|c| self.node_mask(&c)),
                    last.map(|c| self.node_mask(&c)),
                )
            }
            None => (None, None),
        };
        self.record_decision(
            format!(
                "sliced pipeline over ϕ{}{}{}",
                plan.semantics.keyword(),
                if chain.len() > 1 {
                    format!(" join chain {chain:?}")
                } else {
                    format!(" label scan :{}", chain[0])
                },
                if plan.filter.is_some() {
                    " with endpoint-σ pushdown"
                } else {
                    ""
                }
            ),
            match mode {
                LazyMode::Serial => "lazy-sliced-pipeline",
                LazyMode::Parallel => "parallel-lazy-pipeline",
            },
            estimate,
        );
        let (out, generated) = match mode {
            LazyMode::Serial => {
                let mut pmr = if chain.len() == 1 {
                    Pmr::from_label_scan(self.graph, chain[0], plan.semantics, self.recursion)
                } else {
                    Pmr::from_label_chain(self.graph, &chain, plan.semantics, self.recursion)
                };
                pmr.restrict_endpoints(EndpointFilter {
                    sources: source_mask,
                    targets: target_mask,
                });
                if let Some(token) = &self.cancel {
                    pmr.share_cancel(token.clone());
                }
                let out = pmr.sliced(&plan.spec)?;
                let generated = pmr.steps_generated();
                self.work.merge(&pmr.work_counters());
                (out, generated)
            }
            LazyMode::Parallel => {
                // One shared snapshot per hop, Arc-cloned into every batch
                // worker — built once, never deep-copied per batch.
                let scan: Option<Arc<CsrGraph>> = (chain.len() == 1)
                    .then(|| Arc::new(CsrGraph::with_label(self.graph, chain[0])));
                let hops: Arc<[CsrGraph]> = match &scan {
                    Some(_) => Arc::from(Vec::new()),
                    None => chain
                        .iter()
                        .map(|l| CsrGraph::with_label(self.graph, l))
                        .collect(),
                };
                let (semantics, recursion) = (plan.semantics, self.recursion);
                let cancel = self.cancel.clone();
                let factory = || {
                    let mut pmr = match &scan {
                        Some(csr) => Pmr::from_shared_csr(csr.clone(), semantics, recursion),
                        None => Pmr::from_shared_join(hops.clone(), semantics, recursion),
                    };
                    pmr.restrict_endpoints(EndpointFilter {
                        sources: source_mask.clone(),
                        targets: target_mask.clone(),
                    });
                    if let Some(token) = &cancel {
                        pmr.share_cancel(token.clone());
                    }
                    pmr
                };
                let sources = factory().sources();
                let hop0 = scan.as_deref().unwrap_or_else(|| &hops[0]);
                let weights = source_weights(hop0, estimate.as_ref(), &sources);
                let run = pmr_parallel::sliced(
                    &factory,
                    &plan.spec,
                    &sources,
                    Some(&weights),
                    &self.parallel_config(),
                    self.recursion.max_paths,
                )?;
                self.work.merge(&run.work);
                (run.paths, run.steps_generated)
            }
        };
        self.lazy_pipeline_fired = true;
        // Bypassed operators: Edges and σ per hop, the k−1 joins, ϕ, the
        // endpoint σ (when present), γ and (when present) τ; the π node
        // itself is charged by the caller.
        self.stats.recursive_calls += 1;
        self.stats.join_calls += chain.len() - 1;
        self.stats.operators_evaluated += 2 * chain.len()
            + (chain.len() - 1)
            + 2
            + usize::from(plan.filter.is_some())
            + usize::from(plan.spec.ordered_by_length);
        self.stats.intermediate_paths += generated
            + out.len()
                * (1 + usize::from(plan.spec.ordered_by_length)
                    + usize::from(plan.filter.is_some()));
        self.stats.max_intermediate = self.stats.max_intermediate.max(generated);
        Ok(Some(out))
    }

    /// Evaluates a per-node condition (a pure first- or last-node predicate,
    /// see [`Condition::endpoint_split`]) over every node of the graph,
    /// yielding the keep-mask pushed into the PMR expansion.
    fn node_mask(&self, condition: &Condition) -> Vec<bool> {
        (0..self.graph.node_count() as u32)
            .map(|v| condition.eval(&Path::node(NodeId(v)), self.graph))
            .collect()
    }

    fn record_decision(
        &mut self,
        operator: String,
        chosen: &'static str,
        estimate: Option<ClosureEstimate>,
    ) {
        self.decisions.push(StrategyDecision {
            operator,
            chosen,
            threads: self.exec.threads,
            estimate,
        });
    }

    /// The PMR-side scheduling knobs of this evaluator's execution
    /// configuration.
    fn parallel_config(&self) -> ParallelConfig {
        ParallelConfig {
            threads: self.exec.threads,
            batch_size: self.exec.batch_size,
        }
    }

    /// Evaluates an expression into a [`PathSetRepr`]: a root-level
    /// recursive label scan or label-scan join chain (bounded, or under a
    /// finite semantics) returns the *lazy* PMR form, so callers can pull
    /// top-k results without the closure — or, for chains, either join side
    /// — ever being materialised; every other plan evaluates as usual and
    /// returns the materialised form.
    pub fn eval_repr(&mut self, expr: &PlanExpr) -> Result<PathSetRepr<'static>, AlgebraError> {
        if let PlanExpr::Recursive { semantics, input } = expr {
            if let Some(chain) = input.label_scan_chain() {
                if *semantics != PathSemantics::Walk || self.recursion.max_length.is_some() {
                    let pmr = if chain.len() == 1 {
                        Pmr::from_label_scan(self.graph, chain[0], *semantics, self.recursion)
                    } else {
                        Pmr::from_label_chain(self.graph, &chain, *semantics, self.recursion)
                    };
                    return Ok(PathSetRepr::lazy(Box::new(pmr)));
                }
            }
        }
        Ok(PathSetRepr::materialized(self.eval_paths(expr)?))
    }

    /// Evaluates an expression that must produce a set of paths.
    pub fn eval_paths(&mut self, expr: &PlanExpr) -> Result<PathSet, AlgebraError> {
        self.eval(expr)?.into_paths()
    }

    /// Evaluates an expression that must produce a solution space.
    pub fn eval_space(&mut self, expr: &PlanExpr) -> Result<SolutionSpace, AlgebraError> {
        self.eval(expr)?.into_space()
    }

    /// Accounts for an operator the CSR fast path evaluated implicitly, with
    /// the same counters the reference evaluator would have charged.
    fn charge_skipped(&mut self, paths: usize) {
        self.stats.operators_evaluated += 1;
        self.stats.intermediate_paths += paths;
        self.stats.max_intermediate = self.stats.max_intermediate.max(paths);
    }

    fn eval_paths_internal(
        &mut self,
        expr: &PlanExpr,
        operator: &'static str,
    ) -> Result<PathSet, AlgebraError> {
        match self.eval(expr)? {
            EvalOutput::Paths(p) => Ok(p),
            EvalOutput::Space(_) => Err(AlgebraError::TypeMismatch {
                operator,
                expected: "a set of paths",
                found: "a solution space",
            }),
        }
    }

    fn eval_space_internal(
        &mut self,
        expr: &PlanExpr,
        operator: &'static str,
    ) -> Result<SolutionSpace, AlgebraError> {
        match self.eval(expr)? {
            EvalOutput::Space(s) => Ok(s),
            EvalOutput::Paths(_) => Err(AlgebraError::TypeMismatch {
                operator,
                expected: "a solution space",
                found: "a set of paths",
            }),
        }
    }
}

/// Per-source batch-sizing weights of a parallel lazy run, seeded by the
/// closure estimate: a source's weight is its hop-0 out-degree scaled by the
/// estimated paths per base element (`estimate.paths / estimate.base`), so a
/// predicted-heavy source closes its batch early
/// ([`pathalg_pmr::parallel::plan_batches`]) and cannot serialise the run.
/// Without an estimate the weights degrade to plain out-degrees.
fn source_weights(
    csr0: &CsrGraph,
    estimate: Option<&ClosureEstimate>,
    sources: &[pathalg_graph::ids::NodeId],
) -> Vec<u64> {
    let per_base = estimate
        .map(|est| (est.paths / est.base.max(1.0)).clamp(1.0, 1e6))
        .unwrap_or(1.0);
    sources
        .iter()
        .map(|&s| 1 + (csr0.out_degree(s) as f64 * per_base) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::choose_pipeline_impl;
    use crate::physical::frontier::phi_frontier_csr;
    use pathalg_core::condition::Condition;
    use pathalg_core::eval::Evaluator;
    use pathalg_core::ops::projection::ProjectionSpec;
    use pathalg_core::GroupKey;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    fn plans() -> Vec<PlanExpr> {
        let knows = PlanExpr::edges().select(Condition::edge_label(1, "Knows"));
        let outer = PlanExpr::edges()
            .select(Condition::edge_label(1, "Likes"))
            .join(PlanExpr::edges().select(Condition::edge_label(1, "Has_creator")));
        vec![
            knows.clone().recursive(PathSemantics::Trail),
            knows.clone().recursive(PathSemantics::Shortest),
            outer.clone().recursive(PathSemantics::Simple),
            knows
                .clone()
                .recursive(PathSemantics::Acyclic)
                .union(outer.recursive(PathSemantics::Acyclic)),
            knows
                .recursive(PathSemantics::Trail)
                .group_by(GroupKey::SourceTarget)
                .project(ProjectionSpec::all()),
        ]
    }

    #[test]
    fn engine_evaluator_matches_the_reference_on_every_plan() {
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        for plan in plans() {
            let reference = Evaluator::new(&f.graph).eval_paths(&plan).unwrap();
            for threads in [1, 2, 8] {
                let mut engine = EngineEvaluator::new(
                    &f.graph,
                    cfg,
                    ExecutionConfig {
                        threads,
                        batch_size: 2,
                        ..ExecutionConfig::default()
                    },
                );
                let out = engine.eval_paths(&plan).unwrap();
                assert_eq!(out, reference, "plan {plan} at {threads} threads");
            }
        }
    }

    #[test]
    fn csr_fast_path_charges_the_same_stats_as_the_reference() {
        let f = Figure1::new();
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Trail);
        let mut reference = Evaluator::new(&f.graph);
        reference.eval_paths(&plan).unwrap();
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::default(),
            ExecutionConfig::default(),
        );
        engine.eval_paths(&plan).unwrap();
        assert_eq!(engine.stats(), reference.stats());
    }

    #[test]
    fn label_scan_shape_detection() {
        let scan = PlanExpr::edges().select(Condition::edge_label(1, "Knows"));
        assert_eq!(scan.label_scan_target(), Some("Knows"));
        // Wrong position, extra operator, or non-label condition: no match.
        let wrong_pos = PlanExpr::edges().select(Condition::edge_label(2, "Knows"));
        assert_eq!(wrong_pos.label_scan_target(), None);
        let not_edges = PlanExpr::nodes().select(Condition::edge_label(1, "Knows"));
        assert_eq!(not_edges.label_scan_target(), None);
        let nested = scan.select(Condition::first_property("name", "Moe"));
        assert_eq!(nested.label_scan_target(), None);
    }

    #[test]
    fn sliced_pipelines_are_byte_identical_to_the_materialised_engine() {
        use pathalg_core::ops::order_by::OrderKey;
        use pathalg_core::ops::projection::Take;
        use pathalg_core::PathSemantics;

        let f = Figure1::new();
        let scan = || PlanExpr::edges().select(Condition::edge_label(1, "Knows"));
        let cases: Vec<(PlanExpr, Option<OrderKey>, GroupKey, ProjectionSpec)> = vec![
            (
                scan().recursive(PathSemantics::Trail),
                Some(OrderKey::Path),
                GroupKey::SourceTarget,
                ProjectionSpec::new(Take::All, Take::All, Take::Count(1)),
            ),
            (
                scan().recursive(PathSemantics::Shortest),
                None,
                GroupKey::SourceTarget,
                ProjectionSpec::new(Take::All, Take::All, Take::Count(2)),
            ),
            (
                scan().recursive(PathSemantics::Simple),
                None,
                GroupKey::Source,
                ProjectionSpec::new(Take::Count(2), Take::All, Take::Count(3)),
            ),
        ];
        for (phi, order, gkey, spec) in cases {
            // The materialised engine pipeline: CSR frontier + core γ/τ/π.
            let PlanExpr::Recursive { semantics, .. } = &phi else {
                unreachable!()
            };
            let csr = CsrGraph::with_label(&f.graph, "Knows");
            let closure = phi_frontier_csr(
                &csr,
                *semantics,
                &RecursionConfig::default(),
                &ExecutionConfig::default(),
            )
            .unwrap();
            let grouped = group_by(gkey, &closure);
            let ranked = match order {
                Some(key) => order_by(key, &grouped),
                None => grouped,
            };
            let expected = projection(&spec, &ranked);

            let mut plan = phi.group_by(gkey);
            if let Some(key) = order {
                plan = plan.order_by(key);
            }
            let plan = plan.project(spec);
            assert!(
                choose_pipeline_impl(&plan, &RecursionConfig::default()).is_some(),
                "{plan} should go lazy"
            );
            for threads in [1, 2, 8] {
                let mut engine = EngineEvaluator::new(
                    &f.graph,
                    RecursionConfig::default(),
                    ExecutionConfig::with_threads(threads),
                );
                let out = engine.eval_paths(&plan).unwrap();
                assert_eq!(
                    out.as_slice(),
                    expected.as_slice(),
                    "{plan} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn eval_repr_returns_a_lazy_form_for_label_scans() {
        use pathalg_core::PathSemantics;
        let f = Figure1::new();
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Trail);
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::default(),
            ExecutionConfig::default(),
        );
        let materialised = engine.eval_paths(&plan).unwrap();
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::default(),
            ExecutionConfig::default(),
        );
        let repr = engine.eval_repr(&plan).unwrap();
        assert!(repr.is_lazy());
        let prefix: Vec<_> = materialised.iter().take(3).cloned().collect();
        assert_eq!(repr.top_k(3).unwrap().as_slice(), prefix.as_slice());
        // Non-scan plans come back materialised.
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::default(),
            ExecutionConfig::default(),
        );
        let repr = engine.eval_repr(&PlanExpr::nodes()).unwrap();
        assert!(!repr.is_lazy());
        // Unbounded Walk keeps the materialising (error-detecting) path.
        let walk = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Walk);
        let mut engine = EngineEvaluator::new(
            &f.graph,
            RecursionConfig::unbounded(),
            ExecutionConfig::default(),
        );
        assert!(engine.eval_repr(&walk).is_err());
    }

    #[test]
    fn bigger_graphs_agree_between_interpreters_in_parallel() {
        let g = snb_like_graph(&SnbConfig::scale(40, 21));
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Shortest);
        let reference = Evaluator::new(&g).eval_paths(&plan).unwrap();
        let mut engine = EngineEvaluator::new(
            &g,
            RecursionConfig::default(),
            ExecutionConfig::with_threads(4),
        );
        assert_eq!(engine.eval_paths(&plan).unwrap(), reference);
    }
}
