//! # pathalg-engine — executing path-algebra plans
//!
//! The paper deliberately leaves the algorithms for each operator out of scope
//! ("to build a reference implementation, one only needs to specify an
//! algorithm for each operator", Section 7.2). This crate supplies those
//! algorithms and ties the whole stack together:
//!
//! * [`physical`] — alternative physical implementations of the recursive
//!   operator: the semi-naïve fixpoint from `pathalg-core`, a literal
//!   (naïve) transcription of Definition 4.1 used as an ablation baseline,
//!   a DFS enumeration with restrictor pruning, a BFS specialised to the
//!   shortest-path semantics, and the parallel CSR-native frontier engine
//!   ([`physical::frontier`], DESIGN.md §7). All of them are cross-checked
//!   against each other in the tests and raced in the benchmark harness.
//! * [`exec`] — [`exec::ExecutionConfig`] (thread count, source batch size)
//!   and [`exec::EngineEvaluator`], the engine-level plan interpreter that
//!   dispatches every ϕ through the cost model and recognises label-scan
//!   bases for the CSR fast path.
//! * [`cost`] — a simple cardinality/cost model over
//!   [`pathalg_graph::stats::GraphStats`], the ingredient Section 7.3 says a
//!   cost-based optimizer needs, plus the physical ϕ-implementation choosers
//!   ([`cost::choose_phi_impl`], [`cost::choose_scan_phi_impl`], and
//!   [`cost::choose_pipeline_impl`], which routes slicing γ/τ/π pipelines
//!   over label scans to `pathalg-pmr`'s lazy path-multiset representation —
//!   DESIGN.md §8).
//! * [`baseline`] — end-to-end evaluation of a parsed query with the
//!   classical automaton-product algorithm instead of the algebra, used as an
//!   independent correctness oracle and benchmark comparator.
//! * [`runner`] — [`runner::QueryRunner`]: parse → type-check → optimize →
//!   evaluate, the "reference implementation of GQL / SQL-PGQ" the paper
//!   sketches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cost;
pub mod exec;
pub mod physical;
pub mod runner;

pub use exec::{EngineEvaluator, ExecutionConfig};
pub use runner::{QueryResult, QueryRunner, RunnerConfig};
