//! The parallel, CSR-native frontier engine for ϕ.
//!
//! Every other physical implementation of ϕ in this crate evaluates the
//! fixpoint as a sequence of *global* rounds: one shared frontier, one shared
//! result set, one thread. This module decomposes ϕ along the axis the GQL
//! complexity literature singles out as embarrassingly parallel — the
//! **source node**. Under all five semantics the admission predicate depends
//! only on the path itself, and the Shortest per-pair minimum is keyed by
//! `(First(p), Last(p))` with `First(p)` fixed per source, so the expansion
//! from one source never needs to observe another source's state. The engine
//! therefore:
//!
//! 1. groups the base relation by `First(p)` into a CSR-shaped index (or
//!    uses `pathalg-graph`'s label-restricted [`CsrGraph`] directly when the
//!    base is a label scan, skipping path materialisation altogether),
//! 2. partitions the sources into contiguous batches of
//!    [`ExecutionConfig::batch_size`],
//! 3. expands the batches concurrently on a scoped pool
//!    ([`mini_pool::parallel_map_chunks`]), and
//! 4. merges the per-batch results **in batch order**, which makes the output
//!    path sequence identical for every thread count — the determinism
//!    contract of DESIGN.md §7.
//!
//! Besides parallelism, per-source expansion admits three sequential
//! optimisations the global fixpoint cannot apply:
//!
//! * **Incremental admission.** A candidate `p ∘ q` is checked against the
//!   restrictor by comparing only `q`'s new nodes/edges with `p` (`O(|q|·|p|)`,
//!   i.e. `O(|p|)` for edge bases) instead of re-scanning the whole candidate
//!   (`O((|p|+|q|)²)`), exploiting that `p` is already admitted.
//! * **No speculative allocation.** The candidate path is only materialised
//!   after the admission, length, and shortest-distance checks pass; the
//!   semi-naïve loop concatenates first and discards later.
//! * **No per-candidate hashing for edge bases.** When every base path is a
//!   single edge, a candidate's derivation is unique (it extends its own
//!   length-`k−1` prefix), so the expansion needs no dedup set at all;
//!   composite bases (from joins) fall back to a per-source seen-set.
//!
//! `max_paths` is enforced across all batches through the shared atomic
//! [`PathBudget`]; the success/failure outcome is deterministic because the
//! total number of produced paths does not depend on the schedule (which
//! *error variant* is reported can vary only in the corner case where a run
//! violates two bounds at once — see the `PathBudget` docs).

use crate::exec::ExecutionConfig;
use mini_pool::parallel_map_chunks;
use pathalg_core::budget::{CancelToken, PathBudget};
use pathalg_core::error::AlgebraError;
use pathalg_core::fasthash::{FastMap, FastSet};
use pathalg_core::ops::recursive::{
    PathSemantics, RecursionConfig, UNBOUNDED_WALK_ITERATION_LIMIT,
};
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_graph::csr::CsrGraph;
use pathalg_graph::frontier::Frontier;
use pathalg_graph::graph::PropertyGraph;
use pathalg_graph::ids::NodeId;
use pathalg_rpq::automaton_eval::AutomatonEvaluator;
use pathalg_rpq::regex::LabelRegex;

/// The parallel frontier implementation of `ϕ_semantics(base)`.
///
/// Produces exactly the same path set as
/// [`crate::physical::phi_seminaive`]; the insertion order of the result is
/// "sources in ascending node order, per source level by level" and is
/// identical for every `exec.threads` value.
pub fn phi_frontier(
    semantics: PathSemantics,
    base: &PathSet,
    config: &RecursionConfig,
    exec: &ExecutionConfig,
) -> Result<PathSet, AlgebraError> {
    phi_frontier_with_cancel(semantics, base, config, exec, None)
}

/// [`phi_frontier`] with a cooperative [`CancelToken`], polled once per
/// source: a fired token (or passed deadline) aborts every batch worker
/// within one source expansion.
pub fn phi_frontier_with_cancel(
    semantics: PathSemantics,
    base: &PathSet,
    config: &RecursionConfig,
    exec: &ExecutionConfig,
    cancel: Option<&CancelToken>,
) -> Result<PathSet, AlgebraError> {
    let admitted: Vec<&Path> = base
        .iter()
        .filter(|p| semantics.admits(p) && within_length(p.len(), config))
        .collect();
    if admitted.is_empty() {
        return Ok(PathSet::new());
    }

    let index = BaseIndex::build(&admitted);
    let walk_unbounded = semantics == PathSemantics::Walk && config.max_length.is_none();
    // Under unbounded Walk the expansion must recognise non-acyclic
    // candidates (they prove the fixpoint is infinite); precomputing each
    // base path's own acyclicity once keeps the per-candidate check to the
    // cross-path comparison.
    let base_acyclic: Vec<bool> = if walk_unbounded {
        admitted.iter().map(|p| p.is_acyclic()).collect()
    } else {
        Vec::new()
    };
    // Composite base paths (length > 1) can derive the same candidate through
    // different decompositions; single-edge bases cannot, so they skip the
    // per-source dedup set entirely.
    let need_dedup = admitted.iter().any(|p| p.len() > 1);
    let budget = PathBudget::new(config.max_paths);

    let batches = parallel_map_chunks(
        exec.threads,
        exec.batch_size,
        index.sources(),
        |_, chunk| -> Result<Vec<Path>, AlgebraError> {
            let mut out = Vec::new();
            // Per-batch level buffers, recycled across sources: the expansion
            // loop drains `cur` into `out` and swaps in `next`, so after the
            // first source the steady state performs no buffer allocation.
            let mut levels = LevelBuffers::default();
            for &source in chunk {
                if let Some(token) = cancel {
                    token.check()?;
                }
                expand_base_source(
                    source,
                    &admitted,
                    &index,
                    semantics,
                    config,
                    &budget,
                    need_dedup,
                    &base_acyclic,
                    &mut levels,
                    &mut out,
                )?;
            }
            Ok(out)
        },
    );

    merge_batches(batches)
}

/// ϕ directly over a label-restricted CSR snapshot: the base relation is the
/// edge set of `csr` (every edge as a length-1 path), which is never
/// materialised as a `PathSet`. This is the hot path the planner dispatches
/// `ϕ(σ_{label(edge(1))=ℓ}(Edges(G)))` plans to.
pub fn phi_frontier_csr(
    csr: &CsrGraph,
    semantics: PathSemantics,
    config: &RecursionConfig,
    exec: &ExecutionConfig,
) -> Result<PathSet, AlgebraError> {
    phi_frontier_csr_with_cancel(csr, semantics, config, exec, None)
}

/// [`phi_frontier_csr`] with a cooperative [`CancelToken`], polled once per
/// source (and once per expansion level inside each source, so even one
/// explosive source stops promptly).
pub fn phi_frontier_csr_with_cancel(
    csr: &CsrGraph,
    semantics: PathSemantics,
    config: &RecursionConfig,
    exec: &ExecutionConfig,
    cancel: Option<&CancelToken>,
) -> Result<PathSet, AlgebraError> {
    let sources: Vec<NodeId> = (0..csr.node_count())
        .map(|i| NodeId(i as u32))
        .filter(|&n| csr.out_degree(n) > 0)
        .collect();
    let budget = PathBudget::new(config.max_paths);

    let batches = parallel_map_chunks(
        exec.threads,
        exec.batch_size,
        &sources,
        |_, chunk| -> Result<Vec<Path>, AlgebraError> {
            let mut out = Vec::new();
            // Per-batch scratch: the Shortest visited set + distance table
            // (reset per source — sparse or dense by fill factor) and the
            // level buffers recycled across sources.
            let mut scratch = if semantics == PathSemantics::Shortest {
                Some((
                    Frontier::new(csr.node_count()),
                    vec![0usize; csr.node_count()],
                ))
            } else {
                None
            };
            let mut levels = LevelBuffers::default();
            for &source in chunk {
                if let Some(token) = cancel {
                    token.check()?;
                }
                if let Some((seen, _)) = &mut scratch {
                    seen.reset();
                }
                expand_csr_source(
                    source,
                    csr,
                    semantics,
                    config,
                    &budget,
                    cancel,
                    scratch.as_mut(),
                    &mut levels,
                    &mut out,
                )?;
            }
            Ok(out)
        },
    );

    merge_batches(batches)
}

/// Parallel automaton-product RPQ evaluation: the frontier scheduling of this
/// module applied to [`AutomatonEvaluator::expand_source`], which carries the
/// product-automaton state through the expansion. Equivalent to
/// [`AutomatonEvaluator::eval_all`] at any thread count.
pub fn automaton_frontier(
    graph: &PropertyGraph,
    regex: &LabelRegex,
    semantics: PathSemantics,
    config: &RecursionConfig,
    exec: &ExecutionConfig,
) -> Result<PathSet, AlgebraError> {
    let evaluator = AutomatonEvaluator::new(graph, regex);
    let sources: Vec<NodeId> = graph.nodes().collect();
    let budget = PathBudget::new(config.max_paths);

    let batches = parallel_map_chunks(
        exec.threads,
        exec.batch_size,
        &sources,
        |_, chunk| -> Result<Vec<Path>, AlgebraError> {
            let mut out = Vec::new();
            for &source in chunk {
                out.extend(
                    evaluator
                        .expand_source(source, semantics, config, &budget)?
                        .paths,
                );
            }
            Ok(out)
        },
    );

    merge_batches(batches)
}

/// The two level buffers of one source expansion — `(path, is_acyclic)`
/// pairs for the current and next BFS level — hoisted to per-batch scope so
/// expanding a source reuses the previous source's capacity instead of
/// allocating fresh `Vec`s. Both buffers are empty between sources (the loop
/// drains `cur` into the output and swaps in `next`); a batch that aborts
/// with an error never expands another source, so no explicit clearing is
/// needed on the failure path.
#[derive(Default)]
struct LevelBuffers {
    cur: Vec<(Path, bool)>,
    next: Vec<(Path, bool)>,
}

/// Folds per-batch results into one `PathSet` in batch order; the first
/// failing batch (in batch order) decides the reported error.
fn merge_batches(batches: Vec<Result<Vec<Path>, AlgebraError>>) -> Result<PathSet, AlgebraError> {
    let mut result = PathSet::new();
    for batch in batches {
        for path in batch? {
            result.insert(path);
        }
    }
    Ok(result)
}

/// The base relation grouped by `First(p)`: a CSR over path indexes, stable
/// with respect to base insertion order within each node.
struct BaseIndex {
    offsets: Vec<usize>,
    entries: Vec<u32>,
    sources: Vec<NodeId>,
}

impl BaseIndex {
    fn build(admitted: &[&Path]) -> Self {
        let n = 1 + admitted
            .iter()
            .map(|p| p.first().index().max(p.last().index()))
            .max()
            .unwrap_or(0);
        let mut degree = vec![0usize; n];
        for p in admitted {
            degree[p.first().index()] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut entries = vec![0u32; admitted.len()];
        let mut cursor = offsets[..n].to_vec();
        for (i, p) in admitted.iter().enumerate() {
            let s = p.first().index();
            entries[cursor[s]] = i as u32;
            cursor[s] += 1;
        }
        let sources = (0..n)
            .filter(|&i| degree[i] > 0)
            .map(|i| NodeId(i as u32))
            .collect();
        Self {
            offsets,
            entries,
            sources,
        }
    }

    /// Distinct source nodes in ascending order — the deterministic merge
    /// order of the engine.
    fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Indexes (into the admitted slice) of the base paths starting at `node`.
    fn starting_at(&self, node: NodeId) -> &[u32] {
        let i = node.index();
        if i + 1 < self.offsets.len() {
            &self.entries[self.offsets[i]..self.offsets[i + 1]]
        } else {
            &[]
        }
    }
}

/// Expands one source over a general (possibly composite) base relation,
/// appending this source's result paths to `out` in level order.
#[allow(clippy::too_many_arguments)]
fn expand_base_source(
    source: NodeId,
    admitted: &[&Path],
    index: &BaseIndex,
    semantics: PathSemantics,
    config: &RecursionConfig,
    budget: &PathBudget,
    need_dedup: bool,
    base_acyclic: &[bool],
    levels: &mut LevelBuffers,
    out: &mut Vec<Path>,
) -> Result<(), AlgebraError> {
    let walk_unbounded = semantics == PathSemantics::Walk && config.max_length.is_none();
    let start = out.len();
    // For Shortest: minimal known length per target (the source is fixed).
    let mut best: FastMap<NodeId, usize> = FastMap::default();
    let mut seen: Option<FastSet<Path>> = need_dedup.then(FastSet::default);
    let LevelBuffers { cur, next } = levels;
    debug_assert!(cur.is_empty() && next.is_empty());

    // Level 0: the admitted base paths starting here, in base order. Empty
    // paths are emitted (and seed the Shortest minimum) but never expanded:
    // `p ∘ q = q` for an empty `p`, and `q` is produced at this same source
    // anyway.
    for &qi in index.starting_at(source) {
        let p = admitted[qi as usize];
        if semantics == PathSemantics::Shortest {
            let entry = best.entry(p.last()).or_insert(p.len());
            *entry = (*entry).min(p.len());
        }
        if let Some(seen) = &mut seen {
            seen.insert(p.clone());
        }
        // Base paths count toward `max_paths` but never trip it themselves,
        // exactly like the fixpoint's unconditional base insertion.
        budget.record(1);
        if p.is_empty() {
            out.push(p.clone());
        } else {
            let acyclic = if walk_unbounded {
                base_acyclic[qi as usize]
            } else {
                true
            };
            cur.push((p.clone(), acyclic));
        }
    }

    let mut iterations = 0usize;
    while !cur.is_empty() {
        iterations += 1;
        if walk_unbounded && iterations > UNBOUNDED_WALK_ITERATION_LIMIT {
            // `paths_so_far` counts this source's output only: a local tally
            // is deterministic at any thread count, where the shared budget's
            // running total depends on the schedule.
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                paths_so_far: out.len() - start + cur.len(),
            });
        }
        for (p, p_acyclic) in cur.iter() {
            for &qi in index.starting_at(p.last()) {
                let q = admitted[qi as usize];
                if q.is_empty() {
                    continue;
                }
                let new_len = p.len() + q.len();
                if !within_length(new_len, config) {
                    continue;
                }
                if !step_admissible(semantics, p, q) {
                    continue;
                }
                if walk_unbounded {
                    // `p ∘ q` acyclic ⇔ both parts are and `q` brings no node
                    // already on `p`; a non-acyclic admitted candidate proves
                    // the fixpoint is infinite, exactly as in the semi-naïve
                    // implementation.
                    let acyclic = *p_acyclic
                        && base_acyclic[qi as usize]
                        && q.nodes()[1..].iter().all(|u| !p.nodes().contains(u));
                    if !acyclic {
                        return Err(AlgebraError::RecursionLimitExceeded {
                            bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                            paths_so_far: out.len() - start + cur.len() + next.len(),
                        });
                    }
                }
                if semantics == PathSemantics::Shortest {
                    if let Some(&b) = best.get(&q.last()) {
                        if new_len > b {
                            continue;
                        }
                    }
                }
                let cand = p.concat(q).expect("base paths are indexed by First");
                if let Some(seen) = &mut seen {
                    if !seen.insert(cand.clone()) {
                        continue;
                    }
                }
                if semantics == PathSemantics::Shortest {
                    let entry = best.entry(cand.last()).or_insert(new_len);
                    *entry = (*entry).min(new_len);
                }
                budget.claim(1)?;
                next.push((cand, true));
            }
        }
        out.extend(cur.drain(..).map(|(p, _)| p));
        std::mem::swap(cur, next);
    }

    if semantics == PathSemantics::Shortest {
        let tail = out.split_off(start);
        out.extend(
            tail.into_iter()
                .filter(|p| best.get(&p.last()) == Some(&p.len())),
        );
    }
    Ok(())
}

/// Expands one source directly over the CSR edge base, appending this
/// source's result paths to `out` in level (= length) order.
#[allow(clippy::too_many_arguments)]
fn expand_csr_source(
    source: NodeId,
    csr: &CsrGraph,
    semantics: PathSemantics,
    config: &RecursionConfig,
    budget: &PathBudget,
    cancel: Option<&CancelToken>,
    mut scratch: Option<&mut (Frontier, Vec<usize>)>,
    levels: &mut LevelBuffers,
    out: &mut Vec<Path>,
) -> Result<(), AlgebraError> {
    let walk_unbounded = semantics == PathSemantics::Walk && config.max_length.is_none();
    let start = out.len();
    let LevelBuffers { cur, next } = levels;
    debug_assert!(cur.is_empty() && next.is_empty());

    // Level 0: one length-1 path per outgoing CSR edge. A single edge is
    // always a trail and simple; it is acyclic unless it is a self-loop.
    if within_length(1, config) {
        let source_path = Path::node(source);
        let (targets, edges) = csr.neighbor_slices(source);
        for (&t, &e) in targets.iter().zip(edges) {
            if semantics == PathSemantics::Acyclic && t == source {
                continue;
            }
            if let Some((seen, dist)) = scratch.as_deref_mut() {
                if seen.insert(t) {
                    dist[t.index()] = 1;
                }
            }
            // Level 0 is the base relation: counted, never limit-checked
            // (matches the fixpoint's unconditional base insertion).
            budget.record(1);
            cur.push((source_path.with_step(e, t), t != source));
        }
    }

    let mut iterations = 0usize;
    while !cur.is_empty() {
        if let Some(token) = cancel {
            token.check()?;
        }
        iterations += 1;
        if walk_unbounded && iterations > UNBOUNDED_WALK_ITERATION_LIMIT {
            // Local tally (this source's output), so the error value is
            // deterministic at any thread count — see expand_base_source.
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                paths_so_far: out.len() - start + cur.len(),
            });
        }
        for (p, p_acyclic) in cur.iter() {
            let new_len = p.len() + 1;
            if !within_length(new_len, config) {
                continue;
            }
            let (targets, edges) = csr.neighbor_slices(p.last());
            for (&t, &e) in targets.iter().zip(edges) {
                let admissible = match semantics {
                    PathSemantics::Walk => true,
                    PathSemantics::Trail => !p.edges().contains(&e),
                    PathSemantics::Acyclic => !p.nodes().contains(&t),
                    // Simple: a closed path cannot be extended, and the new
                    // node may only coincide with the first (closing the
                    // cycle). Shortest restricts its search space to simple
                    // candidates, exactly like the semi-naïve fixpoint.
                    PathSemantics::Simple | PathSemantics::Shortest => {
                        p.first() != p.last() && (t == p.first() || !p.nodes()[1..].contains(&t))
                    }
                };
                if !admissible {
                    continue;
                }
                if walk_unbounded && (!p_acyclic || p.nodes().contains(&t)) {
                    return Err(AlgebraError::RecursionLimitExceeded {
                        bound: UNBOUNDED_WALK_ITERATION_LIMIT,
                        paths_so_far: out.len() - start + cur.len() + next.len(),
                    });
                }
                if let Some((seen, dist)) = scratch.as_deref_mut() {
                    if seen.contains(t) && new_len > dist[t.index()] {
                        continue;
                    }
                    if seen.insert(t) {
                        dist[t.index()] = new_len;
                    }
                }
                budget.claim(1)?;
                next.push((p.with_step(e, t), true));
            }
        }
        out.extend(cur.drain(..).map(|(p, _)| p));
        std::mem::swap(cur, next);
    }

    if semantics == PathSemantics::Shortest {
        let (seen, dist) = scratch.expect("Shortest expansion carries scratch");
        let tail = out.split_off(start);
        out.extend(
            tail.into_iter()
                .filter(|p| seen.contains(p.last()) && dist[p.last().index()] == p.len()),
        );
    }
    Ok(())
}

/// Incremental admission of `p ∘ q` given that `p` and `q` are themselves
/// admitted: only `q`'s new nodes/edges are compared against `p`.
fn step_admissible(semantics: PathSemantics, p: &Path, q: &Path) -> bool {
    match semantics {
        PathSemantics::Walk => true,
        PathSemantics::Trail => q.edges().iter().all(|e| !p.edges().contains(e)),
        PathSemantics::Acyclic => q.nodes()[1..].iter().all(|u| !p.nodes().contains(u)),
        PathSemantics::Simple | PathSemantics::Shortest => {
            // A closed simple path cannot be extended further.
            if p.first() == p.last() {
                return false;
            }
            let qn = q.nodes();
            let k = q.len();
            // Interior new nodes must be fresh with respect to all of `p`…
            if !qn[1..k].iter().all(|u| !p.nodes().contains(u)) {
                return false;
            }
            // …and the new last node may only coincide with `First(p)`.
            let last = qn[k];
            last == p.first() || !p.nodes()[1..].contains(&last)
        }
    }
}

fn within_length(len: usize, config: &RecursionConfig) -> bool {
    config.max_length.is_none_or(|l| len <= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{phi_bfs_shortest, phi_seminaive};
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::join::join;
    use pathalg_core::ops::selection::selection;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};
    use pathalg_graph::generator::structured::{cycle_graph, grid_graph};
    use pathalg_graph::graph::PropertyGraph;

    fn label_base(graph: &PropertyGraph, label: &str) -> PathSet {
        selection(
            graph,
            &Condition::edge_label(1, label),
            &PathSet::edges(graph),
        )
    }

    fn exec(threads: usize) -> ExecutionConfig {
        ExecutionConfig {
            threads,
            batch_size: 2,
            ..ExecutionConfig::default()
        }
    }

    const RESTRICTED: [PathSemantics; 4] = [
        PathSemantics::Trail,
        PathSemantics::Acyclic,
        PathSemantics::Simple,
        PathSemantics::Shortest,
    ];

    #[test]
    fn agrees_with_seminaive_on_figure1_for_every_semantics() {
        let f = Figure1::new();
        let base = label_base(&f.graph, "Knows");
        let cfg = RecursionConfig::default();
        for semantics in RESTRICTED {
            let reference = phi_seminaive(semantics, &base, &cfg).unwrap();
            for threads in [1, 2, 8] {
                let out = phi_frontier(semantics, &base, &cfg, &exec(threads)).unwrap();
                assert_eq!(out, reference, "{semantics:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn result_order_is_identical_across_thread_counts() {
        // Deliberately sparse: the full Trail/Simple closures stay small.
        let g = snb_like_graph(&SnbConfig {
            persons: 10,
            messages: 12,
            knows_per_person: 2,
            likes_per_person: 1,
            seed: 7,
            ..SnbConfig::default()
        });
        let base = label_base(&g, "Knows");
        let cfg = RecursionConfig::default();
        for semantics in RESTRICTED {
            let single = phi_frontier(semantics, &base, &cfg, &exec(1)).unwrap();
            for threads in [2, 5, 16] {
                let multi = phi_frontier(semantics, &base, &cfg, &exec(threads)).unwrap();
                assert_eq!(
                    single.as_slice(),
                    multi.as_slice(),
                    "insertion order diverged under {semantics:?} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn csr_variant_agrees_with_the_pathset_variant() {
        let g = grid_graph(3, 3, "a");
        let base = label_base(&g, "a");
        let csr = CsrGraph::with_label(&g, "a");
        let cfg = RecursionConfig::default();
        for semantics in RESTRICTED {
            let via_paths = phi_frontier(semantics, &base, &cfg, &exec(2)).unwrap();
            let via_csr = phi_frontier_csr(&csr, semantics, &cfg, &exec(2)).unwrap();
            assert_eq!(via_paths.as_slice(), via_csr.as_slice(), "{semantics:?}");
        }
        // Bounded walks too.
        let bounded = RecursionConfig::with_max_length(3);
        let via_paths = phi_frontier(PathSemantics::Walk, &base, &bounded, &exec(2)).unwrap();
        let via_csr = phi_frontier_csr(&csr, PathSemantics::Walk, &bounded, &exec(2)).unwrap();
        assert_eq!(via_paths.as_slice(), via_csr.as_slice());
    }

    #[test]
    fn composite_bases_deduplicate_recombinations() {
        // Likes ⋈ Has_creator produces 2-hop base paths; recombinations of
        // those must not appear twice (the seen-set path of the engine).
        let f = Figure1::new();
        let hops = join(
            &label_base(&f.graph, "Likes"),
            &label_base(&f.graph, "Has_creator"),
        );
        let cfg = RecursionConfig::default();
        let reference = phi_seminaive(PathSemantics::Simple, &hops, &cfg).unwrap();
        for threads in [1, 4] {
            let out = phi_frontier(PathSemantics::Simple, &hops, &cfg, &exec(threads)).unwrap();
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn empty_and_node_only_bases_are_preserved() {
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        let empty = PathSet::new();
        assert!(phi_frontier(PathSemantics::Trail, &empty, &cfg, &exec(2))
            .unwrap()
            .is_empty());
        let nodes = PathSet::nodes(&f.graph);
        let out = phi_frontier(PathSemantics::Trail, &nodes, &cfg, &exec(2)).unwrap();
        assert_eq!(out.len(), 7);
        let out = phi_frontier(PathSemantics::Shortest, &nodes, &cfg, &exec(2)).unwrap();
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn mixed_node_and_edge_bases_match_seminaive_under_shortest() {
        // A zero-length base path seeds the per-pair minimum: closed cycles
        // from that node must be filtered, exactly as in the fixpoint.
        let g = cycle_graph(4, "a");
        let mut base = label_base(&g, "a");
        base.insert(Path::node(NodeId(0)));
        let cfg = RecursionConfig::default();
        let reference = phi_seminaive(PathSemantics::Shortest, &base, &cfg).unwrap();
        let out = phi_frontier(PathSemantics::Shortest, &base, &cfg, &exec(2)).unwrap();
        assert_eq!(out, reference);
        assert_eq!(out, phi_bfs_shortest(&base, &cfg).unwrap());
    }

    #[test]
    fn unbounded_walks_error_on_cycles_and_finish_on_dags() {
        let cfg = RecursionConfig::unbounded();
        let cyclic = cycle_graph(3, "a");
        let base = label_base(&cyclic, "a");
        let csr = CsrGraph::with_label(&cyclic, "a");
        for threads in [1, 4] {
            assert!(matches!(
                phi_frontier(PathSemantics::Walk, &base, &cfg, &exec(threads)),
                Err(AlgebraError::RecursionLimitExceeded { .. })
            ));
            assert!(matches!(
                phi_frontier_csr(&csr, PathSemantics::Walk, &cfg, &exec(threads)),
                Err(AlgebraError::RecursionLimitExceeded { .. })
            ));
        }
        let dag = pathalg_graph::generator::structured::chain_graph(6, "a");
        let base = label_base(&dag, "a");
        let out = phi_frontier(PathSemantics::Walk, &base, &cfg, &exec(2)).unwrap();
        assert_eq!(out.len(), 15);
        let reference = phi_seminaive(PathSemantics::Walk, &base, &cfg).unwrap();
        assert_eq!(out, reference);
    }

    #[test]
    fn walk_on_a_self_loop_base_errors_like_seminaive() {
        use pathalg_graph::graph::GraphBuilder;
        use pathalg_graph::value::Value;
        let mut b = GraphBuilder::new();
        let n0 = b.add_node("N", Vec::<(&str, Value)>::new());
        let n1 = b.add_node("N", Vec::<(&str, Value)>::new());
        b.add_edge(n0, n0, "a", Vec::<(&str, Value)>::new());
        b.add_edge(n0, n1, "a", Vec::<(&str, Value)>::new());
        let g = b.build();
        let base = label_base(&g, "a");
        let cfg = RecursionConfig::unbounded();
        let reference = phi_seminaive(PathSemantics::Walk, &base, &cfg);
        let frontier = phi_frontier(PathSemantics::Walk, &base, &cfg, &exec(1));
        let csr = CsrGraph::with_label(&g, "a");
        let via_csr = phi_frontier_csr(&csr, PathSemantics::Walk, &cfg, &exec(1));
        assert!(matches!(
            reference,
            Err(AlgebraError::RecursionLimitExceeded { .. })
        ));
        assert!(matches!(
            frontier,
            Err(AlgebraError::RecursionLimitExceeded { .. })
        ));
        assert!(matches!(
            via_csr,
            Err(AlgebraError::RecursionLimitExceeded { .. })
        ));
    }

    #[test]
    fn max_paths_is_enforced_across_batches() {
        let f = Figure1::new();
        let base = label_base(&f.graph, "Knows");
        let cfg = RecursionConfig {
            max_length: Some(10),
            max_paths: Some(4),
        };
        for threads in [1, 4] {
            assert_eq!(
                phi_frontier(PathSemantics::Walk, &base, &cfg, &exec(threads)),
                Err(AlgebraError::ResultLimitExceeded { limit: 4 })
            );
        }
    }

    #[test]
    fn oversized_bases_without_candidates_succeed_like_seminaive() {
        // The fixpoint admits its base unconditionally and only enforces
        // `max_paths` on recursion candidates; a base larger than the limit
        // that produces no candidates must therefore succeed — on every
        // implementation and at every thread count.
        let f = Figure1::new();
        let base = PathSet::nodes(&f.graph); // 7 paths, never expandable
        let cfg = RecursionConfig {
            max_length: None,
            max_paths: Some(5),
        };
        let reference = phi_seminaive(PathSemantics::Trail, &base, &cfg).unwrap();
        assert_eq!(reference.len(), 7);
        for threads in [1, 4] {
            let out = phi_frontier(PathSemantics::Trail, &base, &cfg, &exec(threads)).unwrap();
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn automaton_frontier_matches_the_serial_evaluator() {
        use pathalg_rpq::parse::parse_regex;
        let f = Figure1::new();
        let cfg = RecursionConfig::default();
        for pattern in [":Knows+", "(:Knows|:Likes)+", "(:Likes/:Has_creator)*"] {
            let re = parse_regex(pattern).unwrap();
            let serial = AutomatonEvaluator::new(&f.graph, &re)
                .eval_all(PathSemantics::Trail, &cfg)
                .unwrap();
            for threads in [1, 3] {
                let parallel =
                    automaton_frontier(&f.graph, &re, PathSemantics::Trail, &cfg, &exec(threads))
                        .unwrap();
                assert_eq!(parallel.as_slice(), serial.as_slice(), "{pattern}");
            }
        }
    }
}
