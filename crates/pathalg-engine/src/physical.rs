//! Physical implementations of the recursive operator ϕ.
//!
//! The algebra fixes *what* ϕ computes; how to compute it is an engineering
//! choice (Section 8.2 surveys the design space). This module provides five
//! interchangeable implementations over the same input — a set of base paths —
//! so that the ablation benchmarks can compare them and the tests can use
//! them as mutual oracles:
//!
//! * [`phi_seminaive`] — re-export of the frontier-based fixpoint from
//!   `pathalg-core` (the default).
//! * [`phi_naive`] — a literal transcription of Definition 4.1: at every
//!   iteration the *entire* accumulated set is re-joined with the base set.
//!   Quadratic re-derivation, kept as the textbook baseline.
//! * [`phi_dfs`] — depth-first enumeration with restrictor pruning, the way a
//!   tuple-at-a-time engine (Neo4j-style) would produce trails.
//! * [`phi_bfs_shortest`] — a breadth-first search specialised to the
//!   shortest-path semantics: paths are generated level by level and a
//!   per-endpoint-pair distance table cuts the search off as soon as longer
//!   candidates appear.
//! * [`frontier::phi_frontier`] — the parallel, CSR-native per-source
//!   frontier engine (DESIGN.md §7): partitions the sources into batches,
//!   expands the batches concurrently, and merges deterministically. Its
//!   label-scan specialisation [`frontier::phi_frontier_csr`] evaluates
//!   `ϕ(σℓ(Edges))` directly over a [`pathalg_graph::csr::CsrGraph`]
//!   without materialising the base relation.

pub mod frontier;

use pathalg_core::budget::CancelToken;
use pathalg_core::error::AlgebraError;
use pathalg_core::fasthash::FastMap;
use pathalg_core::ops::join::join;
use pathalg_core::ops::recursive::{recursive, PathSemantics, RecursionConfig};
use pathalg_core::ops::union::union;
use pathalg_core::path::Path;
use pathalg_core::pathset::PathSet;
use pathalg_graph::ids::NodeId;

/// The default semi-naïve fixpoint (delegates to `pathalg-core`).
pub fn phi_seminaive(
    semantics: PathSemantics,
    base: &PathSet,
    config: &RecursionConfig,
) -> Result<PathSet, AlgebraError> {
    recursive(semantics, base, config)
}

/// A literal transcription of Definition 4.1:
/// `ϕi(S) = (ϕi−1(S) ⋈ S) ∪ ϕi−1(S)` until `|ϕi−1| = |ϕi|`, filtering each
/// round by the semantics predicate (and by endpoint distance for Shortest).
pub fn phi_naive(
    semantics: PathSemantics,
    base: &PathSet,
    config: &RecursionConfig,
) -> Result<PathSet, AlgebraError> {
    let admit = |p: &Path| -> bool {
        semantics.admits(p) && config.max_length.is_none_or(|l| p.len() <= l)
    };
    let filtered_base: PathSet = base.iter().filter(|p| admit(p)).cloned().collect();

    let mut current = filtered_base.clone();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if semantics == PathSemantics::Walk && config.max_length.is_none() && iterations > 64 {
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: 64,
                paths_so_far: current.len(),
            });
        }
        let joined = join(&current, &filtered_base);
        let admitted: PathSet = joined.iter().filter(|p| admit(p)).cloned().collect();
        let next = union(&admitted, &current);
        if let Some(limit) = config.max_paths {
            if next.len() > limit {
                return Err(AlgebraError::ResultLimitExceeded { limit });
            }
        }
        if next.len() == current.len() {
            break;
        }
        // Detect the non-terminating Walk case the same way the semi-naïve
        // implementation does: an admitted candidate that revisits a node
        // proves the fixpoint is infinite.
        if semantics == PathSemantics::Walk
            && config.max_length.is_none()
            && admitted.iter().any(|p| !p.is_acyclic())
        {
            return Err(AlgebraError::RecursionLimitExceeded {
                bound: 64,
                paths_so_far: next.len(),
            });
        }
        current = next;
    }

    if semantics == PathSemantics::Shortest {
        Ok(keep_shortest(&current))
    } else {
        Ok(current)
    }
}

/// Depth-first enumeration with restrictor pruning.
///
/// The base paths are indexed by their first node; starting from every base
/// path, the search extends the current path with any base path that starts
/// at its last node, pruning extensions the semantics rejects. This mirrors
/// how tuple-at-a-time engines enumerate trails without materialising
/// intermediate sets.
pub fn phi_dfs(
    semantics: PathSemantics,
    base: &PathSet,
    config: &RecursionConfig,
) -> Result<PathSet, AlgebraError> {
    let mut by_first: FastMap<NodeId, Vec<&Path>> = FastMap::default();
    for p in base.iter() {
        if !p.is_empty() {
            by_first.entry(p.first()).or_default().push(p);
        }
    }
    let mut result = PathSet::new();
    for start in base.iter() {
        if !semantics.admits(start) || !within(start, config) {
            continue;
        }
        let mut stack: Vec<Path> = vec![start.clone()];
        while let Some(current) = stack.pop() {
            if result.insert(current.clone()) {
                if let Some(limit) = config.max_paths {
                    if result.len() > limit {
                        return Err(AlgebraError::ResultLimitExceeded { limit });
                    }
                }
            } else {
                // Already explored this path from another start.
                continue;
            }
            if let Some(extensions) = by_first.get(&current.last()) {
                for ext in extensions {
                    let cand = match current.concat(ext) {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    if !within(&cand, config) || !semantics.admits(&cand) {
                        continue;
                    }
                    if semantics == PathSemantics::Walk
                        && config.max_length.is_none()
                        && !cand.is_acyclic()
                    {
                        return Err(AlgebraError::RecursionLimitExceeded {
                            bound: 0,
                            paths_so_far: result.len(),
                        });
                    }
                    stack.push(cand);
                }
            }
        }
    }
    if semantics == PathSemantics::Shortest {
        Ok(keep_shortest(&result))
    } else {
        Ok(result)
    }
}

/// Breadth-first search specialised to the shortest-path semantics: paths are
/// expanded level by level (by number of joined base paths), and a candidate
/// is dropped as soon as a strictly shorter path between the same endpoints is
/// known.
pub fn phi_bfs_shortest(base: &PathSet, config: &RecursionConfig) -> Result<PathSet, AlgebraError> {
    phi_bfs_shortest_with_cancel(base, config, None)
}

/// [`phi_bfs_shortest`] with a cooperative [`CancelToken`], polled once per
/// BFS level.
pub fn phi_bfs_shortest_with_cancel(
    base: &PathSet,
    config: &RecursionConfig,
    cancel: Option<&CancelToken>,
) -> Result<PathSet, AlgebraError> {
    let mut by_first: FastMap<NodeId, Vec<&Path>> = FastMap::default();
    for p in base.iter() {
        if !p.is_empty() {
            by_first.entry(p.first()).or_default().push(p);
        }
    }
    let mut best: FastMap<(NodeId, NodeId), usize> = FastMap::default();
    let mut all = PathSet::new();
    let mut frontier: Vec<Path> = Vec::new();
    for p in base.iter() {
        if !p.is_simple() || !within(p, config) {
            continue;
        }
        let key = (p.first(), p.last());
        let entry = best.entry(key).or_insert(p.len());
        *entry = (*entry).min(p.len());
        if all.insert(p.clone()) {
            frontier.push(p.clone());
        }
    }
    while !frontier.is_empty() {
        if let Some(token) = cancel {
            token.check()?;
        }
        let mut next = Vec::new();
        for current in &frontier {
            let Some(extensions) = by_first.get(&current.last()) else {
                continue;
            };
            for ext in extensions {
                if ext.is_empty() {
                    continue;
                }
                let cand = current.concat(ext).expect("indexed by first node");
                if !within(&cand, config) || !cand.is_simple() {
                    continue;
                }
                let key = (cand.first(), cand.last());
                if let Some(&b) = best.get(&key) {
                    if cand.len() > b {
                        continue;
                    }
                }
                let entry = best.entry(key).or_insert(cand.len());
                *entry = (*entry).min(cand.len());
                if all.insert(cand.clone()) {
                    if let Some(limit) = config.max_paths {
                        if all.len() > limit {
                            return Err(AlgebraError::ResultLimitExceeded { limit });
                        }
                    }
                    next.push(cand);
                }
            }
        }
        frontier = next;
    }
    let mut result = PathSet::new();
    for p in all.iter() {
        if best.get(&(p.first(), p.last())) == Some(&p.len()) {
            result.insert(p.clone());
        }
    }
    Ok(result)
}

fn within(path: &Path, config: &RecursionConfig) -> bool {
    config.max_length.is_none_or(|l| path.len() <= l)
}

/// Keeps, per `(First, Last)` endpoint pair, exactly the minimal-length paths
/// (all of them on ties), preserving the input's insertion order.
///
/// Single grouping pass: each path either starts a group, extends the running
/// minimum's survivor list, or — on a strictly shorter length — replaces it.
/// Only the surviving indexes are cloned into the result, unlike the previous
/// version, which re-scanned the minimum map for every path and rebuilt the
/// full set through a second filtered pass.
fn keep_shortest(paths: &PathSet) -> PathSet {
    // Per endpoint pair: the minimal length seen and the indexes holding it.
    let mut groups: FastMap<(NodeId, NodeId), (usize, Vec<usize>)> = FastMap::default();
    for (i, p) in paths.iter().enumerate() {
        let entry = groups
            .entry((p.first(), p.last()))
            .or_insert_with(|| (p.len(), Vec::new()));
        if p.len() < entry.0 {
            entry.0 = p.len();
            entry.1.clear();
            entry.1.push(i);
        } else if p.len() == entry.0 {
            entry.1.push(i);
        }
    }
    let mut survivors: Vec<usize> = groups.into_values().flat_map(|(_, idx)| idx).collect();
    survivors.sort_unstable();
    let slice = paths.as_slice();
    let mut result = PathSet::with_capacity(survivors.len());
    for i in survivors {
        result.insert(slice[i].clone());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::selection::selection;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::random::{random_labeled_graph, RandomGraphConfig};
    use pathalg_graph::generator::structured::{chain_graph, cycle_graph, ladder_graph};
    use pathalg_graph::graph::PropertyGraph;

    fn knows_base(graph: &PropertyGraph) -> PathSet {
        selection(
            graph,
            &Condition::edge_label(1, "Knows"),
            &PathSet::edges(graph),
        )
    }

    fn label_base(graph: &PropertyGraph, label: &str) -> PathSet {
        selection(
            graph,
            &Condition::edge_label(1, label),
            &PathSet::edges(graph),
        )
    }

    #[test]
    fn all_implementations_agree_on_figure1() {
        let f = Figure1::new();
        let base = knows_base(&f.graph);
        let cfg = RecursionConfig::default();
        for semantics in [
            PathSemantics::Trail,
            PathSemantics::Acyclic,
            PathSemantics::Simple,
            PathSemantics::Shortest,
        ] {
            let a = phi_seminaive(semantics, &base, &cfg).unwrap();
            let b = phi_naive(semantics, &base, &cfg).unwrap();
            let c = phi_dfs(semantics, &base, &cfg).unwrap();
            assert_eq!(a, b, "naive vs seminaive under {semantics:?}");
            assert_eq!(a, c, "dfs vs seminaive under {semantics:?}");
        }
        let shortest = phi_bfs_shortest(&base, &cfg).unwrap();
        assert_eq!(
            shortest,
            phi_seminaive(PathSemantics::Shortest, &base, &cfg).unwrap()
        );
    }

    #[test]
    fn all_implementations_agree_on_bounded_walks() {
        let f = Figure1::new();
        let base = knows_base(&f.graph);
        let cfg = RecursionConfig::with_max_length(4);
        let a = phi_seminaive(PathSemantics::Walk, &base, &cfg).unwrap();
        let b = phi_naive(PathSemantics::Walk, &base, &cfg).unwrap();
        let c = phi_dfs(PathSemantics::Walk, &base, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn all_implementations_agree_on_generated_graphs() {
        let graphs = vec![
            chain_graph(8, "a"),
            cycle_graph(6, "a"),
            ladder_graph(3, "a"),
            random_labeled_graph(&RandomGraphConfig {
                nodes: 12,
                edges: 20,
                edge_labels: vec!["a".into()],
                node_labels: vec!["N".into()],
                seed: 11,
            }),
        ];
        let cfg = RecursionConfig::default();
        for g in &graphs {
            let base = label_base(g, "a");
            for semantics in [
                PathSemantics::Trail,
                PathSemantics::Acyclic,
                PathSemantics::Simple,
                PathSemantics::Shortest,
            ] {
                let a = phi_seminaive(semantics, &base, &cfg).unwrap();
                let b = phi_naive(semantics, &base, &cfg).unwrap();
                let c = phi_dfs(semantics, &base, &cfg).unwrap();
                assert_eq!(a, b, "naive disagrees under {semantics:?}");
                assert_eq!(a, c, "dfs disagrees under {semantics:?}");
            }
            let s1 = phi_bfs_shortest(&base, &cfg).unwrap();
            let s2 = phi_seminaive(PathSemantics::Shortest, &base, &cfg).unwrap();
            assert_eq!(s1, s2, "bfs-shortest disagrees");
        }
    }

    #[test]
    fn unbounded_walk_errors_in_every_implementation() {
        let f = Figure1::new();
        let base = knows_base(&f.graph);
        let cfg = RecursionConfig::unbounded();
        assert!(phi_seminaive(PathSemantics::Walk, &base, &cfg).is_err());
        assert!(phi_naive(PathSemantics::Walk, &base, &cfg).is_err());
        assert!(phi_dfs(PathSemantics::Walk, &base, &cfg).is_err());
    }

    #[test]
    fn max_paths_is_respected() {
        let f = Figure1::new();
        let base = knows_base(&f.graph);
        let cfg = RecursionConfig {
            max_length: Some(10),
            max_paths: Some(4),
        };
        assert!(matches!(
            phi_naive(PathSemantics::Walk, &base, &cfg),
            Err(AlgebraError::ResultLimitExceeded { .. })
        ));
        assert!(matches!(
            phi_dfs(PathSemantics::Walk, &base, &cfg),
            Err(AlgebraError::ResultLimitExceeded { .. })
        ));
    }

    #[test]
    fn keep_shortest_retains_all_ties_in_insertion_order() {
        let g = ladder_graph(2, "a");
        let base = label_base(&g, "a");
        // The full simple closure of a ladder has many equal-length paths
        // between the same endpoints.
        let all = phi_seminaive(PathSemantics::Simple, &base, &RecursionConfig::default()).unwrap();
        let kept = keep_shortest(&all);
        // Behaviour pin: per endpoint pair only the minimum length survives,
        // every tie at that length survives, and input order is preserved.
        let mut best: FastMap<(NodeId, NodeId), usize> = FastMap::default();
        for p in all.iter() {
            let e = best.entry((p.first(), p.last())).or_insert(p.len());
            *e = (*e).min(p.len());
        }
        let expected: Vec<_> = all
            .iter()
            .filter(|p| best[&(p.first(), p.last())] == p.len())
            .cloned()
            .collect();
        assert_eq!(kept.as_slice(), expected.as_slice());
        let ties = kept
            .iter()
            .filter(|p| {
                kept.iter().any(|q| {
                    q != *p && q.first() == p.first() && q.last() == p.last() && q.len() == p.len()
                })
            })
            .count();
        assert!(ties > 0, "the ladder closure must contain shortest ties");
        assert!(kept.len() < all.len());
    }

    #[test]
    fn dfs_handles_empty_and_node_only_bases() {
        let f = Figure1::new();
        let empty = PathSet::new();
        let cfg = RecursionConfig::default();
        assert!(phi_dfs(PathSemantics::Trail, &empty, &cfg)
            .unwrap()
            .is_empty());
        let nodes = PathSet::nodes(&f.graph);
        let out = phi_dfs(PathSemantics::Trail, &nodes, &cfg).unwrap();
        assert_eq!(out.len(), 7);
        let out = phi_bfs_shortest(&nodes, &cfg).unwrap();
        assert_eq!(out.len(), 7);
    }
}
