//! The end-to-end query runner: parse → type-check → optimize → evaluate.
//!
//! [`QueryRunner`] is the "sound proof-of-concept implementation of the GQL
//! and SQL/PGQ standards" the paper argues becomes easy once the algebra and
//! an algorithm per operator exist. It strings the crates together:
//!
//! 1. `pathalg-parser` turns the query text into an AST and a logical plan;
//! 2. the plan is type-checked (paths vs. solution spaces);
//! 3. `pathalg-core`'s optimizer rewrites it (predicate pushdown,
//!    ϕWalk→ϕShortest, redundant-τ elimination);
//! 4. the engine's physical evaluator ([`crate::exec::EngineEvaluator`])
//!    executes it, collecting statistics — dispatching every ϕ through the
//!    cost model to one of the physical implementations (semi-naïve,
//!    BFS-shortest, or the parallel CSR-native frontier engine configured by
//!    [`RunnerConfig::execution`]).
//!
//! The result carries the original and optimized plans, the rewrite trace and
//! the evaluation statistics, so callers can print an `EXPLAIN ANALYZE`-style
//! report.

use crate::cost::{estimate, CostEstimate};
use crate::exec::{EngineEvaluator, ExecutionConfig, StrategyDecision};
use pathalg_core::error::AlgebraError;
use pathalg_core::eval::EvalStats;
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::recursive::RecursionConfig;
use pathalg_core::optimizer::{Optimizer, RewriteEvent};
use pathalg_core::pathset::PathSet;
use pathalg_graph::graph::PropertyGraph;
use pathalg_graph::stats::GraphStats;
use pathalg_parser::ast::PathQuery;
use pathalg_parser::parse_query;
use std::fmt;

/// Configuration of the query runner.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Whether to run the logical optimizer before evaluation.
    pub optimize: bool,
    /// Bounds applied to the recursive operators.
    pub recursion: RecursionConfig,
    /// Parallel-execution knobs of the physical ϕ engine (thread count and
    /// source batch size); the default is serial.
    pub execution: ExecutionConfig,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            optimize: true,
            recursion: RecursionConfig::default(),
            execution: ExecutionConfig::default(),
        }
    }
}

impl RunnerConfig {
    /// A configuration with a walk-length bound, for ϕ-Walk plans over cyclic
    /// graphs.
    pub fn with_walk_bound(bound: usize) -> Self {
        Self {
            recursion: RecursionConfig {
                max_length: Some(bound),
                ..RecursionConfig::default()
            },
            ..Self::default()
        }
    }

    /// Disables the optimizer (useful for A/B comparisons).
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Sets the parallel-execution configuration.
    pub fn with_execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Shorthand for running the frontier engine on `threads` workers.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_execution(ExecutionConfig::with_threads(threads))
    }
}

/// The result of running a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    paths: PathSet,
    query: PathQuery,
    plan: PlanExpr,
    optimized_plan: PlanExpr,
    rewrites: Vec<RewriteEvent>,
    stats: EvalStats,
    cost_before: CostEstimate,
    cost_after: CostEstimate,
    lazy_pipeline: bool,
    decisions: Vec<StrategyDecision>,
}

impl QueryResult {
    /// The result paths.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// The parsed query.
    pub fn query(&self) -> &PathQuery {
        &self.query
    }

    /// The logical plan before optimization.
    pub fn plan(&self) -> &PlanExpr {
        &self.plan
    }

    /// The logical plan that was actually executed.
    pub fn optimized_plan(&self) -> &PlanExpr {
        &self.optimized_plan
    }

    /// The optimizer rewrites that fired.
    pub fn rewrites(&self) -> &[RewriteEvent] {
        &self.rewrites
    }

    /// Evaluation statistics (operators evaluated, intermediate sizes).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Cost estimates before and after optimization.
    pub fn cost_estimates(&self) -> (CostEstimate, CostEstimate) {
        (self.cost_before, self.cost_after)
    }

    /// True if the executed plan was a sliceable γ/τ/π pipeline evaluated
    /// through the lazy path-multiset representation (`pathalg-pmr`) — i.e.
    /// the engine pulled only the paths the projection keeps instead of
    /// materialising the recursive closure. Reported by the evaluator that
    /// ran the plan, so it reflects what actually executed.
    pub fn used_lazy_pipeline(&self) -> bool {
        self.lazy_pipeline
    }

    /// The adaptive strategy decisions the evaluator recorded, in evaluation
    /// order — one per dispatched ϕ node or sliced pipeline, each carrying
    /// the [`crate::cost::ClosureEstimate`] that justified it.
    pub fn strategy_decisions(&self) -> &[StrategyDecision] {
        &self.decisions
    }

    /// An `EXPLAIN ANALYZE`-style textual report.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("== parsed query ==\n");
        out.push_str(&format!("{}\n", self.query));
        out.push_str("== logical plan ==\n");
        out.push_str(&pathalg_core::display::plan_tree(&self.plan));
        if self.plan != self.optimized_plan {
            out.push_str("== optimized plan ==\n");
            out.push_str(&pathalg_core::display::plan_tree(&self.optimized_plan));
            for rewrite in &self.rewrites {
                out.push_str(&format!("  {rewrite}\n"));
            }
        }
        out.push_str(&format!(
            "== cost estimate ==\n  before: {:.1} (card {:.1})\n  after:  {:.1} (card {:.1})\n",
            self.cost_before.cost,
            self.cost_before.cardinality,
            self.cost_after.cost,
            self.cost_after.cardinality
        ));
        out.push_str(&format!(
            "== execution ==\n  {}\n  {} result paths\n",
            self.stats,
            self.paths.len()
        ));
        if self.lazy_pipeline {
            out.push_str("  strategy: lazy sliced pipeline (PMR top-k enumeration)\n");
        }
        if !self.decisions.is_empty() {
            out.push_str("== strategy ==\n");
            for decision in &self.decisions {
                out.push_str(&format!("  {decision}\n"));
            }
        }
        out
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} paths", self.paths.len())
    }
}

/// Runs path queries against one graph.
pub struct QueryRunner<'g> {
    graph: &'g PropertyGraph,
    stats: GraphStats,
    config: RunnerConfig,
    optimizer: Optimizer,
}

impl<'g> QueryRunner<'g> {
    /// Creates a runner with the default configuration (optimizer on, default
    /// recursion bounds).
    pub fn new(graph: &'g PropertyGraph) -> Self {
        Self::with_config(graph, RunnerConfig::default())
    }

    /// Creates a runner with an explicit configuration.
    pub fn with_config(graph: &'g PropertyGraph, config: RunnerConfig) -> Self {
        Self {
            graph,
            stats: GraphStats::compute(graph),
            config,
            optimizer: Optimizer::new(),
        }
    }

    /// The graph statistics used by the cost model.
    pub fn graph_stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Parses, optimizes and evaluates a query text.
    pub fn run(&self, query_text: &str) -> Result<QueryResult, AlgebraError> {
        let query = parse_query(query_text)
            .map_err(|e| AlgebraError::InvalidArgument(format!("parse error: {e}")))?;
        self.run_parsed(query)
    }

    /// Optimizes and evaluates an already-parsed query.
    pub fn run_parsed(&self, query: PathQuery) -> Result<QueryResult, AlgebraError> {
        // Plan generation + type check in one fallible step (the error is a
        // proper `AlgebraError`, never a panic).
        let plan = query.to_checked_plan()?;
        self.run_plan_with_query(query, plan)
    }

    /// Optimizes and evaluates a hand-built plan (no query text involved).
    pub fn run_plan(&self, plan: &PlanExpr) -> Result<(PathSet, EvalStats), AlgebraError> {
        let executed = if self.config.optimize {
            self.optimizer.optimize(plan)
        } else {
            plan.clone()
        };
        let mut evaluator =
            EngineEvaluator::new(self.graph, self.config.recursion, self.config.execution)
                .with_graph_stats(&self.stats);
        let paths = evaluator.eval_paths(&executed)?;
        Ok((paths, evaluator.stats()))
    }

    fn run_plan_with_query(
        &self,
        query: PathQuery,
        plan: PlanExpr,
    ) -> Result<QueryResult, AlgebraError> {
        let (optimized_plan, rewrites) = if self.config.optimize {
            self.optimizer.optimize_with_trace(&plan)
        } else {
            (plan.clone(), Vec::new())
        };
        let cost_before = estimate(&plan, &self.stats);
        let cost_after = estimate(&optimized_plan, &self.stats);
        let mut evaluator =
            EngineEvaluator::new(self.graph, self.config.recursion, self.config.execution)
                .with_graph_stats(&self.stats);
        let paths = evaluator.eval_paths(&optimized_plan)?;
        // An observation of the strategy that actually ran, not a prediction.
        let lazy_pipeline = evaluator.used_lazy_pipeline();
        let decisions = evaluator.decisions().to_vec();
        Ok(QueryResult {
            paths,
            query,
            plan,
            optimized_plan,
            rewrites,
            stats: evaluator.stats(),
            cost_before,
            cost_after,
            lazy_pipeline,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathalg_core::condition::Condition;
    use pathalg_core::ops::recursive::PathSemantics;
    use pathalg_core::path::Path;
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    #[test]
    fn runs_the_introduction_query_end_to_end() {
        let f = Figure1::new();
        let runner = QueryRunner::new(&f.graph);
        let result = runner
            .run(
                "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})",
            )
            .unwrap();
        assert_eq!(result.paths().len(), 2);
        let path1 = Path::edge(&f.graph, f.e1)
            .concat(&Path::edge(&f.graph, f.e4))
            .unwrap();
        assert!(result.paths().contains(&path1));
        assert!(result.to_string().contains("2 paths"));
    }

    #[test]
    fn optimizer_rewrites_are_reported_and_preserve_results() {
        let f = Figure1::new();
        let query = "MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)";
        let optimized = QueryRunner::new(&f.graph).run(query).unwrap();
        // The ALL SHORTEST WALK pipeline is rewritten to ϕShortest, so it runs
        // even without a walk bound.
        assert!(optimized.optimized_plan().to_string().contains("ϕSHORTEST"));
        assert!(!optimized.rewrites().is_empty());

        // Without the optimizer the same query needs an explicit bound.
        let unoptimized_runner = QueryRunner::with_config(
            &f.graph,
            RunnerConfig::with_walk_bound(6).without_optimizer(),
        );
        let unoptimized = unoptimized_runner.run(query).unwrap();
        assert_eq!(optimized.paths(), unoptimized.paths());
        assert!(unoptimized.rewrites().is_empty());
        assert_eq!(unoptimized.plan(), unoptimized.optimized_plan());
    }

    #[test]
    fn unbounded_walk_without_rewrite_is_an_error_not_a_hang() {
        let f = Figure1::new();
        let runner =
            QueryRunner::with_config(&f.graph, RunnerConfig::default().without_optimizer());
        let err = runner.run("MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)");
        assert!(matches!(
            err,
            Err(AlgebraError::RecursionLimitExceeded { .. })
        ));
    }

    #[test]
    fn parse_errors_are_reported_as_invalid_argument() {
        let f = Figure1::new();
        let err = QueryRunner::new(&f.graph).run("THIS IS NOT GQL");
        assert!(
            matches!(err, Err(AlgebraError::InvalidArgument(msg)) if msg.contains("parse error"))
        );
    }

    #[test]
    fn run_plan_accepts_hand_built_plans() {
        let f = Figure1::new();
        let runner = QueryRunner::new(&f.graph);
        let plan = PlanExpr::edges()
            .select(Condition::edge_label(1, "Knows"))
            .recursive(PathSemantics::Trail);
        let (paths, stats) = runner.run_plan(&plan).unwrap();
        assert_eq!(paths.len(), 12);
        assert!(stats.operators_evaluated >= 3);
    }

    #[test]
    fn explain_report_contains_plans_costs_and_stats() {
        let f = Figure1::new();
        let result = QueryRunner::new(&f.graph)
            .run("MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)")
            .unwrap();
        let text = result.explain();
        assert!(text.contains("== parsed query =="));
        assert!(text.contains("== logical plan =="));
        assert!(text.contains("== optimized plan =="));
        assert!(text.contains("== cost estimate =="));
        assert!(text.contains("== execution =="));
        assert!(text.contains("result paths"));
        let (before, after) = result.cost_estimates();
        assert!(before.cost > 0.0 && after.cost > 0.0);
    }

    #[test]
    fn thread_count_never_changes_query_results() {
        let f = Figure1::new();
        let queries = [
            "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})",
        ];
        let serial = QueryRunner::new(&f.graph);
        for query in queries {
            let reference = serial.run(query).unwrap();
            for threads in [2, 8] {
                // batch_size below the node count, so several batches exist
                // and the configured threads genuinely run concurrently.
                let parallel = QueryRunner::with_config(
                    &f.graph,
                    RunnerConfig::default().with_execution(ExecutionConfig {
                        threads,
                        batch_size: 2,
                        ..ExecutionConfig::default()
                    }),
                );
                let result = parallel.run(query).unwrap();
                assert_eq!(result.paths(), reference.paths(), "{query} at {threads}");
            }
        }
    }

    #[test]
    fn slicing_selector_queries_run_through_the_lazy_pipeline() {
        let f = Figure1::new();
        let runner = QueryRunner::new(&f.graph);
        // ANY SHORTEST WALK is rewritten to π(*,*,1)(γST(ϕShortest(scan))) —
        // a sliceable pipeline over a label scan.
        let lazy = runner
            .run("MATCH ANY SHORTEST WALK p = (?x)-[:Knows+]->(?y)")
            .unwrap();
        assert!(lazy.used_lazy_pipeline());
        assert!(lazy.explain().contains("lazy sliced pipeline"));
        assert_eq!(lazy.paths().len(), 9);
        // ALL keeps everything: no slicing, no lazy pipeline.
        let all = runner
            .run("MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)")
            .unwrap();
        assert!(!all.used_lazy_pipeline());
        assert!(!all.explain().contains("lazy sliced pipeline"));
        // Endpoint filters sit between γ and ϕ and are pushed into the
        // expansion as a source restriction / target mask — filtered
        // selector queries go lazy too.
        let filtered = runner
            .run("MATCH ANY SHORTEST TRAIL p = (?x {name:\"Moe\"})-[:Knows+]->(?y)")
            .unwrap();
        assert!(filtered.used_lazy_pipeline());
        assert!(filtered.explain().contains("endpoint-σ pushdown"));
        // A non-endpoint WHERE clause (interior node) keeps materialising.
        let interior = runner
            .run("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y) WHERE node(2).name = \"Lisa\"")
            .unwrap();
        assert!(!interior.used_lazy_pipeline());
        // Join-chain bases go lazy through the endpoint-keyed arena join.
        let chain = runner
            .run("MATCH ANY 2 SIMPLE p = (?x)-[(:Likes/:Has_creator)+]->(?y)")
            .unwrap();
        assert!(chain.used_lazy_pipeline());
        assert!(chain.explain().contains("join chain"));
        // For unoptimized runs the parser-level tag predicts the executed
        // strategy exactly.
        let config = RunnerConfig::default().without_optimizer();
        let no_opt = QueryRunner::with_config(&f.graph, config);
        for q in [
            "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
            "MATCH ANY 2 SIMPLE p = (?x)-[:Knows+]->(?y)",
            "MATCH ANY SHORTEST TRAIL p = (?x {name:\"Moe\"})-[:Knows+]->(?y)",
            "MATCH ANY 2 SIMPLE p = (?x)-[(:Likes/:Has_creator)+]->(?y)",
        ] {
            let parsed = parse_query(q).unwrap();
            let result = no_opt.run(q).unwrap();
            assert_eq!(
                parsed.lazy_sliceable(&config.recursion),
                result.used_lazy_pipeline(),
                "{q}: parser tag disagrees with the executed strategy"
            );
        }
    }

    #[test]
    fn queries_scale_to_synthetic_snb_graphs() {
        let g = snb_like_graph(&SnbConfig::scale(60, 11));
        let runner = QueryRunner::new(&g);
        let shortest = runner
            .run("MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)")
            .unwrap();
        assert!(!shortest.paths().is_empty());
        // Every returned path is a shortest Knows-walk between its endpoints.
        let two_hop = runner
            .run("MATCH ALL WALK p = (?x:Person)-[:Likes/:Has_creator]->(?y:Person)")
            .unwrap();
        assert!(two_hop.paths().iter().all(|p| p.len() == 2));
        assert!(runner.graph_stats().edges_with_label("Knows") > 0);
    }

    #[test]
    fn group_variables_style_queries_via_where_clause() {
        // Filtering on interior positions exercises the condition accessors
        // end to end.
        let f = Figure1::new();
        let result = QueryRunner::new(&f.graph)
            .run(
                "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y) \
                 WHERE node(2).name = \"Lisa\" AND len() >= 2",
            )
            .unwrap();
        assert!(!result.paths().is_empty());
        for p in result.paths().iter() {
            assert!(p.len() >= 2);
            assert_eq!(
                f.graph.property(p.node_at(2).unwrap(), "name"),
                Some(&pathalg_graph::value::Value::str("Lisa"))
            );
        }
    }
}
