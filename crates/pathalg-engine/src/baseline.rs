//! End-to-end baseline evaluation using the classical automaton-product
//! algorithm instead of the algebra.
//!
//! Section 8.2 of the paper surveys the algorithmic approaches engines use
//! today; the automaton product is the canonical one. This module evaluates a
//! *parsed query* with that algorithm — compiling only the regular expression
//! to an NFA, running the product search, then applying the endpoint
//! constraints, the `WHERE` filter and the selector pipeline with the ordinary
//! algebra operators. Because it shares no code with the ϕ fixpoint, it serves
//! as an independent correctness oracle for the whole algebraic stack and as
//! the comparator in the fixpoint-vs-automaton ablation bench.

use pathalg_core::error::AlgebraError;
use pathalg_core::expr::PlanExpr;
use pathalg_core::ops::recursive::RecursionConfig;
use pathalg_core::pathset::PathSet;
use pathalg_graph::graph::PropertyGraph;
use pathalg_parser::ast::{OutputSpec, PathQuery};
use pathalg_parser::parse_query;
use pathalg_rpq::automaton_eval::AutomatonEvaluator;

/// Evaluates a query text against a graph using the automaton-product
/// baseline.
pub fn evaluate_query_with_automaton(
    graph: &PropertyGraph,
    query_text: &str,
    recursion: &RecursionConfig,
) -> Result<PathSet, AlgebraError> {
    let query = parse_query(query_text)
        .map_err(|e| AlgebraError::InvalidArgument(format!("parse error: {e}")))?;
    evaluate_parsed_with_automaton(graph, &query, recursion)
}

/// Evaluates an already-parsed query using the automaton-product baseline.
pub fn evaluate_parsed_with_automaton(
    graph: &PropertyGraph,
    query: &PathQuery,
    recursion: &RecursionConfig,
) -> Result<PathSet, AlgebraError> {
    // 1. Match the regular path pattern with the product construction.
    let matches = AutomatonEvaluator::new(graph, &query.regex)
        .eval_all(query.restrictor.semantics(), recursion)?;

    // 2. Apply endpoint constraints and the WHERE clause, then the selector /
    //    projection pipeline, reusing the algebra operators over the
    //    materialised match set. We do this by building the same plan the
    //    plan generator would, but rooted at a pre-computed set of paths —
    //    which is exactly the composability argument of the paper: any set of
    //    paths can feed any operator.
    let full_plan = query.to_plan();
    let pipeline = strip_regex_subplan(&full_plan);
    apply_pipeline(graph, &pipeline, matches)
}

/// The part of a generated plan that sits *above* the compiled regular
/// expression (selection on endpoints, γ/τ/π). Returns the operators from the
/// root down to (and excluding) the first operator that belongs to the
/// compiled regex — recognised as the first Recursive/Join/Union/Edges/Nodes
/// node reached while walking single-child operators from the root.
fn strip_regex_subplan(plan: &PlanExpr) -> Vec<PipelineStep> {
    let mut steps = Vec::new();
    let mut current = plan;
    loop {
        match current {
            PlanExpr::Projection { spec, input } => {
                steps.push(PipelineStep::Project(*spec));
                current = input;
            }
            PlanExpr::OrderBy { key, input } => {
                steps.push(PipelineStep::OrderBy(*key));
                current = input;
            }
            PlanExpr::GroupBy { key, input } => {
                steps.push(PipelineStep::GroupBy(*key));
                current = input;
            }
            PlanExpr::Selection { condition, input } => {
                steps.push(PipelineStep::Select(condition.clone()));
                current = input;
            }
            _ => break,
        }
    }
    steps.reverse();
    steps
}

enum PipelineStep {
    Select(pathalg_core::condition::Condition),
    GroupBy(pathalg_core::ops::group_by::GroupKey),
    OrderBy(pathalg_core::ops::order_by::OrderKey),
    Project(pathalg_core::ops::projection::ProjectionSpec),
}

fn apply_pipeline(
    graph: &PropertyGraph,
    steps: &[PipelineStep],
    matches: PathSet,
) -> Result<PathSet, AlgebraError> {
    use pathalg_core::ops::{group_by, order_by, projection, selection};

    let mut paths = matches;
    let mut space: Option<pathalg_core::solution_space::SolutionSpace> = None;
    for step in steps {
        match step {
            PipelineStep::Select(cond) => {
                paths = selection::selection(graph, cond, &paths);
            }
            PipelineStep::GroupBy(key) => {
                space = Some(group_by::group_by(*key, &paths));
            }
            PipelineStep::OrderBy(key) => {
                let s = space.take().ok_or(AlgebraError::TypeMismatch {
                    operator: "order-by",
                    expected: "a solution space",
                    found: "a set of paths",
                })?;
                space = Some(order_by::order_by(*key, &s));
            }
            PipelineStep::Project(spec) => {
                let s = space.take().ok_or(AlgebraError::TypeMismatch {
                    operator: "projection",
                    expected: "a solution space",
                    found: "a set of paths",
                })?;
                paths = projection::projection(spec, &s);
            }
        }
    }
    Ok(paths)
}

/// Convenience used by the query pipeline below (and by `OutputSpec` users):
/// true if the query's output is the plain `ALL` selector.
pub fn is_select_all(query: &PathQuery) -> bool {
    matches!(
        query.output,
        OutputSpec::Selector(pathalg_core::gql::Selector::All)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{QueryRunner, RunnerConfig};
    use pathalg_graph::fixtures::figure1::Figure1;
    use pathalg_graph::generator::snb::{snb_like_graph, SnbConfig};

    fn agree(graph: &PropertyGraph, query: &str) {
        // A walk bound keeps the WALK-restrictor queries finite on cyclic
        // graphs; it applies identically to both evaluation strategies.
        let recursion = RecursionConfig {
            max_length: Some(6),
            ..RecursionConfig::default()
        };
        let baseline = evaluate_query_with_automaton(graph, query, &recursion).unwrap();
        let runner = QueryRunner::with_config(
            graph,
            RunnerConfig {
                optimize: true,
                recursion,
                ..RunnerConfig::default()
            },
        );
        let algebraic = runner.run(query).unwrap();
        assert_eq!(
            &baseline,
            algebraic.paths(),
            "baseline and algebra disagree on {query}: {} vs {} paths",
            baseline.len(),
            algebraic.paths().len()
        );
    }

    #[test]
    fn baseline_agrees_with_the_algebra_on_figure1_queries() {
        let f = Figure1::new();
        let queries = [
            "MATCH ALL TRAIL p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL ACYCLIC p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL SIMPLE p = (?x {name:\"Moe\"})-[(:Knows+)|(:Likes/:Has_creator)+]->(?y {name:\"Apu\"})",
            "MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL PARTITIONS 1 GROUPS ALL PATHS TRAIL p = (?x)-[(:Knows)+]->(?y) GROUP BY TARGET LENGTH ORDER BY GROUP",
            "MATCH ALL TRAIL p = (?x:Person)-[:Likes/:Has_creator]->(?y:Person) WHERE len() = 2",
        ];
        for q in queries {
            agree(&f.graph, q);
        }
    }

    #[test]
    fn baseline_agrees_on_a_synthetic_snb_graph() {
        let g = snb_like_graph(&SnbConfig::scale(20, 7));
        let queries = [
            "MATCH ALL SHORTEST WALK p = (?x)-[:Knows+]->(?y)",
            "MATCH ALL ACYCLIC p = (?x)-[:Likes/:Has_creator]->(?y)",
            "MATCH ALL SHORTEST TRAIL p = (?x)-[:Likes/:Has_creator]->(?y)",
        ];
        for q in queries {
            agree(&g, q);
        }
    }

    #[test]
    fn parse_errors_surface_as_invalid_argument() {
        let f = Figure1::new();
        let err =
            evaluate_query_with_automaton(&f.graph, "NOT A QUERY", &RecursionConfig::default());
        assert!(matches!(err, Err(AlgebraError::InvalidArgument(_))));
    }

    #[test]
    fn is_select_all_helper() {
        let q = parse_query("MATCH ALL TRAIL p = (?x)-[:Knows]->(?y)").unwrap();
        assert!(is_select_all(&q));
        let q = parse_query("MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows]->(?y)").unwrap();
        assert!(!is_select_all(&q));
    }
}
